"""Inclusive L1/L2/L3 hierarchy with MESI-lite directory coherence.

Functional on tags: every access updates presence, dirtiness, the sharer set
and the modified-owner of the target block, and returns a latency composed of
crossbar, L3-bank and memory occupancies.  Two properties matter for the PEI
architecture and are enforced here:

* **Inclusion** — a block present in any private L1/L2 is present in the L3;
  evicting a block from the L3 back-invalidates the private copies.  This is
  what lets the PMU clean a block for memory-side execution by probing only
  the L3 directory (Section 4.3, "Cache Coherence Management").
* **Single-writer** — a block dirty in one core's private caches is in no
  other core's caches; a write to a shared block invalidates other sharers.

The hierarchy exposes ``flush_block`` implementing both back-invalidation
(writer PEIs) and back-writeback (reader PEIs), and an ``l3_observer`` hook
through which the PMU's locality monitor sees every last-level-cache access.
"""

from typing import Callable, Dict, NamedTuple, Optional, Set, Tuple, List

from repro.cache.array import SetAssocArray
from repro.mem.hmc import HmcSystem
from repro.sim.resource import BankedResource
from repro.sim.stat_keys import (
    SLOT_COHERENCE_BACK_INVALIDATIONS,
    SLOT_COHERENCE_CACHE_TO_CACHE,
    SLOT_COHERENCE_INVALIDATIONS,
    SLOT_L1_ACCESSES,
    SLOT_L1_HITS,
    SLOT_L2_ACCESSES,
    SLOT_L2_HITS,
    SLOT_L2_WRITEBACKS,
    SLOT_L3_ACCESSES,
    SLOT_L3_HITS,
    SLOT_L3_MISSES,
    SLOT_L3_WRITEBACKS,
    SLOT_PMU_BACK_INVALIDATIONS,
    SLOT_PMU_BACK_WRITEBACKS,
)
from repro.sim.stats import Stats
from repro.util.bitops import ilog2
from repro.xbar.crossbar import Crossbar

#: Hit levels reported by :meth:`CacheHierarchy.access`.
L1, L2, L3, MEMORY = "l1", "l2", "l3", "mem"


class AccessResult(NamedTuple):
    """Outcome of one load/store: completion time and the level that hit.

    A NamedTuple: one is built per cache access, so construction cost is a
    hot-path concern (frozen dataclasses cost over twice as much).
    """

    finish: float
    level: str


class CacheHierarchy:
    """The on-chip cache subsystem shared by host cores and host-side PCUs."""

    def __init__(
        self,
        n_cores: int,
        block_size: int,
        l1_sets: int,
        l1_ways: int,
        l2_sets: int,
        l2_ways: int,
        l3_sets: int,
        l3_ways: int,
        l1_latency: float,
        l2_latency: float,
        l3_latency: float,
        l3_banks: int,
        l3_bank_occupancy: float,
        crossbar: Crossbar,
        hmc: HmcSystem,
        stats: Stats,
        cache_to_cache_penalty: float = 20.0,
        replacement_policy: str = "lru",
    ):
        self.n_cores = n_cores
        self.block_bits = ilog2(block_size)
        self.block_size = block_size
        self.l1 = [SetAssocArray(l1_sets, l1_ways, replacement_policy)
                   for _ in range(n_cores)]
        self.l2 = [SetAssocArray(l2_sets, l2_ways, replacement_policy)
                   for _ in range(n_cores)]
        self.l3 = SetAssocArray(l3_sets, l3_ways, replacement_policy)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.l3_latency = l3_latency
        self.l3_banks = BankedResource("l3.bank", l3_banks)
        self._l3_bank_list = self.l3_banks.banks
        self._n_l3_banks = len(self._l3_bank_list)
        self.l3_bank_occupancy = l3_bank_occupancy
        self.crossbar = crossbar
        # Crossbar geometry flattened for the inlined traversals in
        # access(): every shared-level access crosses the crossbar twice.
        self._xbar_ports = crossbar.ports
        self._n_xbar_ports = len(crossbar.ports)
        self._xbar_latency = crossbar.latency
        self._response_bytes = block_size + 16
        self.hmc = hmc
        self.stats = stats
        # Batched counter fast path: per-op events accumulate into the
        # shared slot list (see repro.sim.stat_keys) instead of paying a
        # string-keyed dict update per access.
        self._slots = stats.slots
        self.cache_to_cache_penalty = cache_to_cache_penalty
        # True LRU promotes on hit; fifo/random do not.  Cached so the
        # inlined L1 probe in access() can branch without a string compare.
        self._lru = replacement_policy == "lru"
        # Directory state: which cores hold private copies, and which single
        # core (if any) holds the block modified.
        self.sharers: Dict[int, Set[int]] = {}
        self.owner: Dict[int, Optional[int]] = {}
        # Locality-monitor hook: called with the block number of every L3
        # access (hits and misses alike), mirroring the paper's monitor
        # update rule.
        self.l3_observer: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def block_of(self, addr: int) -> int:
        return addr >> self.block_bits

    def block_addr(self, block: int) -> int:
        return block << self.block_bits

    def _fill_private(self, core: int, block: int, dirty: bool, time: float) -> None:
        """Install ``block`` into core's L1 and L2, handling evictions.

        Only reached on private misses, so the combined ``lookup_insert``
        always takes its install path — one set resolution per level.
        """
        _, victim = self.l2[core].lookup_insert(block, dirty=False)
        if victim is not None:
            self._retire_private_victim(core, victim, time)
        _, victim = self.l1[core].lookup_insert(block, dirty=dirty)
        if victim is not None:
            v_block, v_dirty = victim
            if v_dirty:
                # Dirty L1 victim folds into the L2 copy (or re-installs).
                evicted = self.l2[core].insert(v_block, dirty=True)
                if evicted is not None:
                    self._retire_private_victim(core, evicted, time)
                self.l2[core].mark_dirty(v_block)
            else:
                self._drop_private_if_absent(core, v_block)

    def _retire_private_victim(self, core: int, victim: Tuple[int, bool], time: float) -> None:
        """An L2 eviction: dirty data folds into the (inclusive) L3."""
        v_block, v_dirty = victim
        if self.l1[core].contains(v_block):
            # L1 still holds it: the private copy survives, and the evicted
            # L2 copy's dirtiness folds into the surviving L1 line.
            if v_dirty:
                self.l1[core].mark_dirty(v_block)
            return
        if v_dirty:
            self.l3.mark_dirty(v_block)
            if self.owner.get(v_block) == core:
                self.owner[v_block] = None
            self._slots[SLOT_L2_WRITEBACKS] += 1.0
        self._remove_sharer(v_block, core)

    def _drop_private_if_absent(self, core: int, block: int) -> None:
        """After an L1 eviction, update the sharer set if L2 lacks it too."""
        if not self.l2[core].contains(block):
            self._remove_sharer(block, core)
            if self.owner.get(block) == core:
                # Clean eviction of an owned block cannot happen (owned blocks
                # are dirty), but guard anyway.
                self.owner[block] = None

    def _remove_sharer(self, block: int, core: int) -> None:
        holders = self.sharers.get(block)
        if holders is not None:
            holders.discard(core)
            if not holders:
                del self.sharers[block]

    def _add_sharer(self, block: int, core: int) -> None:
        # get + branch rather than setdefault: avoids allocating a fresh
        # set() on every access to an already-shared block.
        holders = self.sharers.get(block)
        if holders is None:
            # simflow: ignore[FLW008] -- allocates only on the first-sharer
            # transition of a block, not per access (see comment above)
            self.sharers[block] = {core}
        else:
            holders.add(core)

    def _invalidate_other_sharers(self, block: int, core: int) -> float:
        """Invalidate every private copy except core's; return added latency."""
        holders = self.sharers.get(block)
        if not holders:
            return 0.0
        # simflow: ignore[FLW008] -- runs only when a write hits a *shared*
        # block; bounded by the sharer count, not per access
        others = [c for c in holders if c != core]
        if not others:
            return 0.0
        for other in others:
            dirty1 = self.l1[other].remove(block)
            dirty2 = self.l2[other].remove(block)
            if dirty1 or dirty2:
                # The previous owner's data folds into the L3 copy.
                self.l3.mark_dirty(block)
            self._remove_sharer(block, other)
            self._slots[SLOT_COHERENCE_INVALIDATIONS] += 1.0
        if self.owner.get(block) not in (None, core):
            self.owner[block] = None
        return 2.0 * self.crossbar.latency

    # ------------------------------------------------------------------
    # The main access path
    # ------------------------------------------------------------------

    def access(self, core: int, addr: int, is_write: bool, time: float) -> AccessResult:
        """Perform a load (``is_write=False``) or store by ``core``.

        Returns the completion time and the level that serviced the access.
        Store misses are write-allocate.
        """
        block = addr >> self.block_bits
        slots = self._slots
        slots[SLOT_L1_ACCESSES] += 1.0
        # L1 — the probe is SetAssocArray.lookup + mark_dirty inlined: this
        # is the single most frequent path in the simulator.
        l1 = self.l1[core]
        line_set = l1.sets[block & l1._set_mask]
        prior = line_set.get(block)
        if prior is not None:
            l1.hits += 1
            if self._lru:
                line_set.move_to_end(block)
            slots[SLOT_L1_HITS] += 1.0
            latency = self.l1_latency
            if is_write:
                latency += self._promote_to_owner(block, core)
                if not prior:
                    line_set[block] = True
            return AccessResult(time + latency, L1)
        l1.misses += 1
        # L2 — same inlined probe as the L1 above.
        slots[SLOT_L2_ACCESSES] += 1.0
        l2 = self.l2[core]
        line_set = l2.sets[block & l2._set_mask]
        if block in line_set:
            l2.hits += 1
            if self._lru:
                line_set.move_to_end(block)
            slots[SLOT_L2_HITS] += 1.0
            latency = self.l2_latency
            if is_write:
                latency += self._promote_to_owner(block, core)
            # The L1 missed above, so this is always an install; the dirty
            # bit is set here directly (no separate mark_dirty probe).
            # lookup_insert inlined on its (deterministic) miss path.
            l1.misses += 1
            if self._lru:
                line_set = l1.sets[block & l1._set_mask]
                victim = None
                if len(line_set) >= l1.n_ways:
                    victim = line_set.popitem(last=False)
                    l1.evictions += 1
                line_set[block] = is_write
            else:
                victim = l1.insert(block, dirty=is_write)
            if victim is not None:
                v_block, v_dirty = victim
                if v_dirty:
                    evicted = l2.insert(v_block, dirty=True)
                    if evicted is not None:
                        self._retire_private_victim(core, evicted, time)
                    l2.mark_dirty(v_block)
                else:
                    self._drop_private_if_absent(core, v_block)
            return AccessResult(time + latency, L2)
        l2.misses += 1
        # L3 (via crossbar; the bank acquire skips the BankedResource
        # modulo wrapper)
        # Crossbar.traverse inlined, request direction (16 B control).
        link = self._xbar_ports[core % self._n_xbar_ports]
        occupancy = 16 / link.bytes_per_cycle
        if time > link.clock:
            gap = time - link.clock
            link.backlog = link.backlog - gap if link.backlog > gap else 0.0
            link.clock = time
        t = time + link.backlog + occupancy + self._xbar_latency
        link.backlog += occupancy
        link.busy_cycles += occupancy
        link.served += 1
        link.bytes_transferred += 16
        # Bank acquire (Resource.acquire inlined; skips the BankedResource
        # modulo wrapper).
        bank = self._l3_bank_list[block % self._n_l3_banks]
        bank_occ = self.l3_bank_occupancy
        if t > bank.clock:
            gap = t - bank.clock
            bank.backlog = bank.backlog - gap if bank.backlog > gap else 0.0
            bank.clock = t
        t = t + bank.backlog
        bank.backlog += bank_occ
        bank.busy_cycles += bank_occ
        bank.served += 1
        t += self.l3_latency
        slots[SLOT_L3_ACCESSES] += 1.0
        if self.l3_observer is not None:
            self.l3_observer(block)
        l3 = self.l3
        line_set = l3.sets[block & l3._set_mask]
        if block in line_set:
            l3.hits += 1
            if self._lru:
                line_set.move_to_end(block)
            slots[SLOT_L3_HITS] += 1.0
            level = L3
            t += self._collect_remote_copy(block, core, is_write)
        else:
            l3.misses += 1
            level = MEMORY
            slots[SLOT_L3_MISSES] += 1.0
            t = self.hmc.read_block(t, block << self.block_bits)
            self._install_in_l3(block, time)
        if is_write:
            t += self._promote_to_owner(block, core)
        # Response crosses the crossbar back to the core (inlined traverse,
        # header + one block of data).
        nbytes = self._response_bytes
        link = self._xbar_ports[core % self._n_xbar_ports]
        occupancy = nbytes / link.bytes_per_cycle
        if t > link.clock:
            gap = t - link.clock
            link.backlog = link.backlog - gap if link.backlog > gap else 0.0
            link.clock = t
        start = t + link.backlog
        link.backlog += occupancy
        link.busy_cycles += occupancy
        link.served += 1
        link.bytes_transferred += nbytes
        t = start + occupancy + self._xbar_latency
        self._add_sharer(block, core)
        # _fill_private inlined (it runs on every L3/memory service): both
        # private levels missed above, so each lookup_insert would take its
        # deterministic miss/install path — done here without the calls.
        if self._lru:
            l2.misses += 1
            line_set = l2.sets[block & l2._set_mask]
            victim = None
            if len(line_set) >= l2.n_ways:
                victim = line_set.popitem(last=False)
                l2.evictions += 1
            line_set[block] = False
            if victim is not None:
                self._retire_private_victim(core, victim, time)
            l1.misses += 1
            line_set = l1.sets[block & l1._set_mask]
            victim = None
            if len(line_set) >= l1.n_ways:
                victim = line_set.popitem(last=False)
                l1.evictions += 1
            line_set[block] = is_write
            if victim is not None:
                v_block, v_dirty = victim
                if v_dirty:
                    evicted = l2.insert(v_block, dirty=True)
                    if evicted is not None:
                        self._retire_private_victim(core, evicted, time)
                    l2.mark_dirty(v_block)
                else:
                    self._drop_private_if_absent(core, v_block)
        else:
            self._fill_private(core, block, dirty=is_write, time=time)
        return AccessResult(t, level)

    def _promote_to_owner(self, block: int, core: int) -> float:
        """Give ``core`` exclusive write ownership of ``block``."""
        latency = self._invalidate_other_sharers(block, core)
        self.owner[block] = core
        return latency

    def _collect_remote_copy(self, block: int, core: int, is_write: bool) -> float:
        """Handle an L3 hit whose latest data lives in another core's cache."""
        own = self.owner.get(block)
        if own is None or own == core:
            return 0.0
        # Cache-to-cache transfer: the owner's dirty data folds into the L3.
        dirty1 = self.l1[own].is_dirty(block)
        dirty2 = self.l2[own].is_dirty(block)
        if dirty1 or dirty2:
            self.l3.mark_dirty(block)
        if is_write:
            self.l1[own].remove(block)
            self.l2[own].remove(block)
            self._remove_sharer(block, own)
        else:
            self.l1[own].mark_clean(block)
            self.l2[own].mark_clean(block)
        self.owner[block] = None
        self._slots[SLOT_COHERENCE_CACHE_TO_CACHE] += 1.0
        return self.cache_to_cache_penalty

    def _install_in_l3(self, block: int, time: float) -> None:
        """Insert a memory-fetched block into the L3, evicting inclusively."""
        victim = self.l3.insert(block, dirty=False)
        if victim is None:
            return
        v_block, v_dirty = victim
        # Inclusion: revoke every private copy of the victim.
        holders = self.sharers.pop(v_block, ())
        for holder in holders:
            d1 = self.l1[holder].remove(v_block)
            d2 = self.l2[holder].remove(v_block)
            v_dirty = v_dirty or bool(d1) or bool(d2)
            self._slots[SLOT_COHERENCE_BACK_INVALIDATIONS] += 1.0
        self.owner.pop(v_block, None)
        if v_dirty:
            self._slots[SLOT_L3_WRITEBACKS] += 1.0
            self.hmc.write_block(time, self.block_addr(v_block))

    # ------------------------------------------------------------------
    # PMU-facing operations
    # ------------------------------------------------------------------

    def present(self, block: int) -> bool:
        """True if the block has any copy on chip (no side effects)."""
        return self.l3.contains(block) or block in self.sharers

    def flush_block(self, block: int, invalidate: bool, time: float) -> Tuple[float, bool]:
        """Back-invalidate (writer PEI) or back-writeback (reader PEI).

        Returns ``(ready_time, wrote_back)`` where ``ready_time`` is when
        main memory holds the latest data (a memory-side PIM operation must
        not start before it), and ``wrote_back`` says whether dirty data
        actually moved off chip.
        """
        if not self.present(block):
            return time, False
        latency = self.l3_latency + self.crossbar.latency
        dirty = self.l3.is_dirty(block)
        # simflow: ignore[FLW008] -- defensive copy: the loop below removes
        # blocks from the private caches, which mutates the sharer set
        holders = list(self.sharers.get(block, ()))
        for holder in holders:
            if invalidate:
                d1 = self.l1[holder].remove(block)
                d2 = self.l2[holder].remove(block)
            else:
                d1 = self.l1[holder].is_dirty(block)
                d2 = self.l2[holder].is_dirty(block)
                self.l1[holder].mark_clean(block)
                self.l2[holder].mark_clean(block)
            dirty = dirty or bool(d1) or bool(d2)
        if invalidate:
            self.sharers.pop(block, None)
            self.owner.pop(block, None)
            self.l3.remove(block)
            self._slots[SLOT_PMU_BACK_INVALIDATIONS] += 1.0
        else:
            self.owner[block] = None
            self.l3.mark_clean(block)
            self._slots[SLOT_PMU_BACK_WRITEBACKS] += 1.0
        ready = time + latency
        if dirty:
            ready = self.hmc.write_block(ready, self.block_addr(block))
            return ready, True
        return ready, False

    # ------------------------------------------------------------------
    # Introspection / invariant checks (used heavily by the test suite)
    # ------------------------------------------------------------------

    def check_inclusion(self) -> List[int]:
        """Return blocks violating inclusion (private copy without L3 copy)."""
        violations = []
        for core in range(self.n_cores):
            for array in (self.l1[core], self.l2[core]):
                for line_set in array.sets:
                    for block in line_set:
                        if not self.l3.contains(block):
                            violations.append(block)
        return violations

    def check_single_writer(self) -> List[int]:
        """Return blocks dirty in more than one core's private caches."""
        violations = []
        seen: Dict[int, int] = {}
        for core in range(self.n_cores):
            for array in (self.l1[core], self.l2[core]):
                for line_set in array.sets:
                    for block, dirty in line_set.items():
                        if not dirty:
                            continue
                        prev = seen.get(block)
                        if prev is not None and prev != core:
                            violations.append(block)
                        seen[block] = core
        return violations
