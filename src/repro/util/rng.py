"""Deterministic random-number helpers.

Every stochastic element of the reproduction (graph generators, data set
synthesis, multiprogrammed mix selection) derives its generator from an
explicit seed so that experiments are replayable bit-for-bit.
"""

import zlib


def derive_seed(base_seed: int, *labels) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    Labels may be strings or integers; they are hashed with CRC32 so the
    derivation is stable across processes and Python versions (unlike
    ``hash``).
    """
    acc = base_seed & 0xFFFFFFFF
    for label in labels:
        data = str(label).encode("utf-8")
        acc = zlib.crc32(data, acc) & 0xFFFFFFFF
    return acc


def make_rng(base_seed: int, *labels) -> "np.random.Generator":  # noqa: F821
    """Return a numpy Generator seeded from ``base_seed`` and ``labels``."""
    # Deferred import: this module sits on the import path of every repro
    # package, including the numpy-free consumers (repro.analysis,
    # repro.verify); only the workloads that actually draw random data pay
    # for numpy.
    import numpy as np

    return np.random.default_rng(derive_seed(base_seed, *labels))
