"""Durable-write primitives: atomic publication and torn-line-safe appends.

Every durable artifact the harness produces — cache entries, trace-store
generations, ``BENCH_<runid>.json`` trajectory records, telemetry bundles,
run-ledger streams — is written by processes that can crash mid-write and,
on the parallel frontier, by several processes at once.  Two primitives
cover both hazards:

* :func:`atomic_write_text` / :func:`atomic_write_json` — temp-file +
  ``os.replace`` publication.  Readers either see the complete old file or
  the complete new file, never a torn intermediate; concurrent writers
  race to publish whole files, not bytes.
* :func:`append_jsonl` — append a batch of records to a shared JSONL
  stream with **one** ``O_APPEND`` ``write()`` per call.  Buffered
  ``open(path, "a")`` appends flush in arbitrary chunks, so two processes
  appending concurrently can interleave *partial* lines; a single
  ``os.write`` of whole ``\\n``-terminated lines keeps every line intact
  on POSIX local filesystems (the append offset is updated atomically per
  ``write``).

The ``simrace`` analyzer (:mod:`repro.analysis.race`, rules RCE003/RCE004)
statically requires bench/obs writers to route through these helpers.
This module sits in ``repro.util`` so both layers can import it —
``repro.bench`` depends on ``repro.obs``, never the reverse.
"""

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable

__all__ = ["append_jsonl", "atomic_write_json", "atomic_write_text"]


def _write_all(fd: int, data: bytes) -> None:
    """Write every byte of ``data`` to ``fd``, looping over short writes."""
    view = memoryview(data)
    while view:
        # A partial write on a regular local file is effectively
        # unobservable, but loop anyway so a short write can never drop
        # bytes silently.
        written = os.write(fd, view)
        view = view[written:]


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> Path:
    """Publish ``text`` at ``path`` via temp-file + ``os.replace``.

    The temp file lands in ``path``'s directory so the final rename never
    crosses a filesystem boundary; any failure unlinks the temp file, so
    an interrupted writer leaves the previous version untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        try:
            _write_all(fd, text.encode(encoding))
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path, payload: Dict, indent=None,
                      sort_keys: bool = True) -> Path:
    """Publish ``payload`` as JSON at ``path`` (atomic replace).

    ``sort_keys`` defaults on so repeated writes of equal payloads are
    byte-identical — the property the content-addressed caches and the
    determinism checks lean on.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    return atomic_write_text(path, text if indent is None else text + "\n")


def append_jsonl(path, records: Iterable[Dict]) -> Path:
    """Append ``records`` to a shared JSONL stream, torn-line-safe.

    All records are serialized first and shipped in a single ``write()``
    on an ``O_APPEND`` descriptor, so concurrent appenders (parallel
    frontier workers, a live-progress listener next to a batch merge) can
    interleave only at *record-batch* granularity — every line in the
    file is a complete JSON document.  An empty batch is a no-op that
    still creates the file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = "".join(json.dumps(record, sort_keys=True) + "\n"
                   for record in records).encode("utf-8")
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        _write_all(fd, data)
    finally:
        os.close(fd)
    return path
