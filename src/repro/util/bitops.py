"""Bit-manipulation helpers used across the address-mapped hardware models.

The PIM directory and the locality monitor of the paper both index their
structures with *XOR-folded* block addresses (Sections 4.3 and 6.1), so the
folding primitive lives here and is shared by both.
"""


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of a positive power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value}")
    return value.bit_length() - 1


def mask(bits: int) -> int:
    """Return an integer with the low ``bits`` bits set."""
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return (1 << bits) - 1


def xor_fold(value: int, bits: int) -> int:
    """Fold ``value`` into ``bits`` bits by XOR-ing successive chunks.

    This is the hash used by the paper for the tag-less PIM directory index
    and for the locality monitor's partial tags.  Folding (rather than
    truncating) mixes high address bits into the result so that regular
    strides do not systematically collide.
    """
    if bits <= 0:
        raise ValueError(f"fold width must be positive, got {bits}")
    value = int(value)  # tolerate numpy integers without overflow
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    folded = 0
    chunk_mask = mask(bits)
    while value:
        folded ^= value & chunk_mask
        value >>= bits
    return folded


def block_address(addr: int, block_size: int) -> int:
    """Return the base address of the cache block containing ``addr``."""
    return addr & ~(block_size - 1)


def block_index(addr: int, block_size: int) -> int:
    """Return the block number (address divided by block size)."""
    return addr >> ilog2(block_size)


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    return addr & ~(alignment - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment`` (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)
