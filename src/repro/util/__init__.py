"""Small shared utilities: bit manipulation and deterministic RNG helpers."""

from repro.util.bitops import (
    align_down,
    align_up,
    block_address,
    block_index,
    ilog2,
    is_power_of_two,
    mask,
    xor_fold,
)
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "align_down",
    "align_up",
    "block_address",
    "block_index",
    "derive_seed",
    "ilog2",
    "is_power_of_two",
    "make_rng",
    "mask",
    "xor_fold",
]
