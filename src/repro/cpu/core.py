"""A trace-driven host core with a bounded memory-level-parallelism window.

The model abstracts an out-of-order core the way trace-driven bandwidth
studies do: non-memory instructions retire at the issue width; independent
loads overlap up to the MSHR-bounded window size; dependent loads (pointer
chases) serialize on the previous load's completion; stores post through a
write buffer.  This keeps per-operation cost tiny while preserving the two
effects the paper's results hinge on — memory-level parallelism and
bandwidth pressure.
"""

import heapq
from typing import List

from repro.cache.hierarchy import CacheHierarchy
from repro.sim.stat_keys import SLOT_CORE_LOADS, SLOT_CORE_STORES
from repro.sim.stats import Stats
from repro.vm.tlb import Tlb


class CoreModel:
    """Per-core execution state and the load/store/compute timing rules."""

    __slots__ = (
        "core_id",
        "issue_width",
        "mlp",
        "tlb",
        "hierarchy",
        "stats",
        "_slots",
        "time",
        "instructions",
        "_window",
        "last_load_completion",
        "chain_completions",
    )

    def __init__(
        self,
        core_id: int,
        issue_width: int,
        mlp: int,
        tlb: Tlb,
        hierarchy: CacheHierarchy,
        stats: Stats,
    ):
        if issue_width <= 0 or mlp <= 0:
            raise ValueError("issue width and MLP window must be positive")
        self.core_id = core_id
        self.issue_width = issue_width
        self.mlp = mlp
        self.tlb = tlb
        self.hierarchy = hierarchy
        self.stats = stats
        self._slots = stats.slots  # batched counter fast path
        self.time = 0.0
        self.instructions = 0
        self._window: List[float] = []  # heap of in-flight completions
        self.last_load_completion = 0.0
        # Per-chain completion horizon for dependent PEI sequences (HJ's
        # unrolled hash-probe pointer chases).
        self.chain_completions = {}

    # ------------------------------------------------------------------
    # MLP window: models MSHR/ROB-bounded overlap of memory operations
    # ------------------------------------------------------------------

    def window_acquire(self) -> None:
        """Claim a window slot, stalling on the oldest in-flight completion."""
        if len(self._window) >= self.mlp:
            oldest = heapq.heappop(self._window)
            if oldest > self.time:
                self.time = oldest

    def window_release(self, completion: float) -> None:
        heapq.heappush(self._window, completion)

    def drain(self) -> None:
        """Wait for every in-flight memory operation (used by fences)."""
        if self._window:
            last = max(self._window)
            if last > self.time:
                self.time = last
            self._window.clear()

    # ------------------------------------------------------------------
    # Operation handlers
    # ------------------------------------------------------------------

    def do_compute(self, insts: int) -> None:
        self.time += insts / self.issue_width
        self.instructions += insts

    def do_load(self, vaddr: int, dep: bool) -> None:
        paddr, tlb_latency = self.tlb.translate(vaddr)
        self.time += 1.0 / self.issue_width + tlb_latency
        if dep and self.last_load_completion > self.time:
            # Address depends on the previous load's value: serialize.
            self.time = self.last_load_completion
        # window_acquire/window_release, inlined (per-load hot path).
        window = self._window
        if len(window) >= self.mlp:
            oldest = heapq.heappop(window)
            if oldest > self.time:
                self.time = oldest
        finish = self.hierarchy.access(self.core_id, paddr, False,
                                       self.time).finish
        heapq.heappush(window, finish)
        self.last_load_completion = finish
        self.instructions += 1
        self._slots[SLOT_CORE_LOADS] += 1.0

    def do_store(self, vaddr: int) -> None:
        paddr, tlb_latency = self.tlb.translate(vaddr)
        self.time += 1.0 / self.issue_width + tlb_latency
        # window_acquire/window_release, inlined (per-store hot path).
        window = self._window
        if len(window) >= self.mlp:
            oldest = heapq.heappop(window)
            if oldest > self.time:
                self.time = oldest
        # Stores retire through the write buffer; the window bounds how many
        # can be outstanding but the core does not wait for completion.
        heapq.heappush(
            window,
            self.hierarchy.access(self.core_id, paddr, True, self.time).finish)
        self.instructions += 1
        self._slots[SLOT_CORE_STORES] += 1.0

    def translate(self, vaddr: int) -> int:
        """TLB translation for a PEI target block (latency charged to core)."""
        paddr, tlb_latency = self.tlb.translate(vaddr)
        self.time += tlb_latency
        return paddr

    @property
    def ipc(self) -> float:
        return self.instructions / self.time if self.time > 0 else 0.0
