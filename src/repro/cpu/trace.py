"""Operations emitted by workload threads.

A workload is a real algorithm running over its own data; as it executes it
*yields* a stream of these operation records, which the timing engine
replays.  Functional effects (the actual PageRank additions, BFS relaxations,
hash probes, ...) happen inside the workload at yield time — operations are
pure timing records, which keeps the engine small and fast.

All addresses are virtual; the core translates them through its TLB.
"""

KIND_COMPUTE = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_PEI = 3
KIND_FENCE = 4
KIND_BARRIER = 5


class Compute:
    """``insts`` non-memory instructions (retired at the core's issue width)."""

    __slots__ = ("kind", "insts")

    def __init__(self, insts: int):
        self.kind = KIND_COMPUTE
        self.insts = insts

    def __repr__(self) -> str:
        return f"Compute({self.insts})"


class Load:
    """A load from a virtual address.

    ``dep=True`` marks a load whose address depends on the previous load's
    value (pointer chasing); the core serializes such loads instead of
    overlapping them in its MLP window.
    """

    __slots__ = ("kind", "addr", "dep")

    def __init__(self, addr: int, dep: bool = False):
        self.kind = KIND_LOAD
        self.addr = addr
        self.dep = dep

    def __repr__(self) -> str:
        return f"Load(0x{self.addr:x}{', dep' if self.dep else ''})"


class Store:
    """A store to a virtual address (posted through the write buffer)."""

    __slots__ = ("kind", "addr")

    def __init__(self, addr: int):
        self.kind = KIND_STORE
        self.addr = addr

    def __repr__(self) -> str:
        return f"Store(0x{self.addr:x})"


class Pei:
    """A PIM-enabled instruction targeting one cache block.

    ``op`` is a :class:`repro.core.isa.PimOp`.  ``wait_output`` defaults to
    True for operations that produce output operands (the issuing thread
    reads the result through the PCU's memory-mapped registers) and False for
    pure read-modify-write operations, which retire asynchronously.

    ``chain`` models the paper's software unrolling for HJ (Section 5.2):
    output-producing PEIs tagged with the same chain id form a dependence
    chain (each waits for the previous one's output), but *different* chains
    overlap in the out-of-order window instead of blocking the core.
    """

    __slots__ = ("kind", "op", "addr", "wait_output", "chain")

    def __init__(self, op, addr: int, wait_output=None, chain=None):
        self.kind = KIND_PEI
        self.op = op
        self.addr = addr
        if wait_output is None:
            wait_output = op.output_bytes > 0 and chain is None
        self.wait_output = wait_output
        self.chain = chain

    def __repr__(self) -> str:
        return f"Pei({self.op.mnemonic}, 0x{self.addr:x})"


class PFence:
    """The pfence instruction: wait for all previously issued PEIs."""

    __slots__ = ("kind",)

    def __init__(self):
        self.kind = KIND_FENCE

    def __repr__(self) -> str:
        return "PFence()"


class Barrier:
    """A software thread barrier (e.g. between parallel-for phases).

    Not a hardware structure — it models the join points of the parallel
    algorithms (level-synchronous BFS, PageRank iterations).  The engine
    parks each arriving thread and releases all of them at the latest
    arrival time.  ``group`` scopes the barrier: only threads of the same
    barrier group synchronize, which is how independent applications of a
    multiprogrammed mix avoid waiting on each other.
    """

    __slots__ = ("kind", "group")

    def __init__(self, group: int = 0):
        self.kind = KIND_BARRIER
        self.group = group

    def __repr__(self) -> str:
        return f"Barrier(group={self.group})"
