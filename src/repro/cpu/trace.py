"""Operations emitted by workload threads, and their compiled-trace form.

A workload is a real algorithm running over its own data; as it executes it
*yields* a stream of these operation records, which the timing engine
replays.  Functional effects (the actual PageRank additions, BFS relaxations,
hash probes, ...) happen inside the workload at yield time — operations are
pure timing records, which keeps the engine small and fast.

All addresses are virtual; the core translates them through its TLB.

Because operation streams never depend on the execution mode (the engine
guarantee the op-cap methodology relies on), a workload's streams can be
**captured once** into a :class:`CompiledTrace` — compact parallel arrays,
one slot per op — and replayed under any number of configurations without
re-running the functional algorithm.  :func:`capture_trace` performs the
capture with engine-equivalent scheduling semantics (barrier phases, per-
thread op caps), and ``System.run`` accepts a CompiledTrace anywhere a
workload is accepted.
"""

import hashlib
import json
from array import array
from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple

KIND_COMPUTE = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_PEI = 3
KIND_FENCE = 4
KIND_BARRIER = 5


class Compute:
    """``insts`` non-memory instructions (retired at the core's issue width)."""

    __slots__ = ("kind", "insts")

    def __init__(self, insts: int):
        self.kind = KIND_COMPUTE
        self.insts = insts

    def __repr__(self) -> str:
        return f"Compute({self.insts})"


class Load:
    """A load from a virtual address.

    ``dep=True`` marks a load whose address depends on the previous load's
    value (pointer chasing); the core serializes such loads instead of
    overlapping them in its MLP window.
    """

    __slots__ = ("kind", "addr", "dep")

    def __init__(self, addr: int, dep: bool = False):
        self.kind = KIND_LOAD
        self.addr = addr
        self.dep = dep

    def __repr__(self) -> str:
        return f"Load(0x{self.addr:x}{', dep' if self.dep else ''})"


class Store:
    """A store to a virtual address (posted through the write buffer)."""

    __slots__ = ("kind", "addr")

    def __init__(self, addr: int):
        self.kind = KIND_STORE
        self.addr = addr

    def __repr__(self) -> str:
        return f"Store(0x{self.addr:x})"


class Pei:
    """A PIM-enabled instruction targeting one cache block.

    ``op`` is a :class:`repro.core.isa.PimOp`.  ``wait_output`` defaults to
    True for operations that produce output operands (the issuing thread
    reads the result through the PCU's memory-mapped registers) and False for
    pure read-modify-write operations, which retire asynchronously.

    ``chain`` models the paper's software unrolling for HJ (Section 5.2):
    output-producing PEIs tagged with the same chain id form a dependence
    chain (each waits for the previous one's output), but *different* chains
    overlap in the out-of-order window instead of blocking the core.
    """

    __slots__ = ("kind", "op", "addr", "wait_output", "chain")

    def __init__(self, op, addr: int, wait_output=None, chain=None):
        self.kind = KIND_PEI
        self.op = op
        self.addr = addr
        if wait_output is None:
            wait_output = op.output_bytes > 0 and chain is None
        self.wait_output = wait_output
        self.chain = chain

    def __repr__(self) -> str:
        return f"Pei({self.op.mnemonic}, 0x{self.addr:x})"


class PFence:
    """The pfence instruction: wait for all previously issued PEIs."""

    __slots__ = ("kind",)

    def __init__(self):
        self.kind = KIND_FENCE

    def __repr__(self) -> str:
        return "PFence()"


class Barrier:
    """A software thread barrier (e.g. between parallel-for phases).

    Not a hardware structure — it models the join points of the parallel
    algorithms (level-synchronous BFS, PageRank iterations).  The engine
    parks each arriving thread and releases all of them at the latest
    arrival time.  ``group`` scopes the barrier: only threads of the same
    barrier group synchronize, which is how independent applications of a
    multiprogrammed mix avoid waiting on each other.
    """

    __slots__ = ("kind", "group")

    def __init__(self, group: int = 0):
        self.kind = KIND_BARRIER
        self.group = group

    def __repr__(self) -> str:
        return f"Barrier(group={self.group})"


# ----------------------------------------------------------------------
# Compiled traces: capture once, replay many
# ----------------------------------------------------------------------

#: Schema tag for serialized traces.
TRACE_SCHEMA = "repro.cpu.trace/1"


class TraceError(ValueError):
    """A workload's stream cannot be compiled, or a trace cannot replay."""


class CompiledTrace:
    """One workload's operation streams, materialized into parallel arrays.

    Per thread, ``kinds[t][i]`` holds the i-th op's kind and the argument
    arrays ``a0..a3`` hold its operands (one slot per op, zero-filled when
    unused):

    ========  ======================  =====================================
    kind      a0                      a1 / a2 / a3
    ========  ======================  =====================================
    COMPUTE   insts                   — / — / —
    LOAD      addr                    dep (0/1) / — / —
    STORE     addr                    — / — / —
    PEI       addr                    op index into ``op_mnemonics`` /
                                      wait_output (0/1) / chain id + 1
                                      (0 means no chain)
    FENCE     —                       — / — / —
    BARRIER   group                   — / — / —
    ========  ======================  =====================================

    The trace also records everything ``System.run`` needs to reproduce a
    generator-driven run bit-identically: the workload name and footprint,
    the allocated regions (for warm-start), barrier groups, the page size
    the regions were laid out with, and the exact ops cap the capture ran
    under.  ``fingerprint`` identifies the capture inputs (workload class,
    params, seed, thread count, ops cap) for the trace cache.
    """

    __slots__ = ("workload_name", "n_threads", "max_ops_per_thread",
                 "page_size", "footprint", "regions", "barrier_groups",
                 "op_mnemonics", "kinds", "a0", "a1", "a2", "a3",
                 "fingerprint")

    def __init__(self, workload_name: str, n_threads: int,
                 max_ops_per_thread: Optional[int], page_size: int,
                 footprint: int, regions: List[Tuple[str, int, int]],
                 barrier_groups: List[int], op_mnemonics: List[str],
                 kinds: List[array], a0: List[array], a1: List[array],
                 a2: List[array], a3: List[array], fingerprint: str):
        self.workload_name = workload_name
        self.n_threads = n_threads
        self.max_ops_per_thread = max_ops_per_thread
        self.page_size = page_size
        self.footprint = footprint
        self.regions = [tuple(r) for r in regions]
        self.barrier_groups = list(barrier_groups)
        self.op_mnemonics = list(op_mnemonics)
        self.kinds = kinds
        self.a0 = a0
        self.a1 = a1
        self.a2 = a2
        self.a3 = a3
        self.fingerprint = fingerprint

    @property
    def n_ops(self) -> int:
        """Total operation count across all threads."""
        return sum(len(k) for k in self.kinds)

    def __repr__(self) -> str:
        return (f"CompiledTrace({self.workload_name!r}, "
                f"threads={self.n_threads}, ops={self.n_ops})")

    # Serialization (JSON-safe, for the bench trace cache) -------------

    def to_payload(self) -> Dict:
        return {
            "schema": TRACE_SCHEMA,
            "workload": self.workload_name,
            "n_threads": self.n_threads,
            "max_ops_per_thread": self.max_ops_per_thread,
            "page_size": self.page_size,
            "footprint": self.footprint,
            "regions": [list(r) for r in self.regions],
            "barrier_groups": self.barrier_groups,
            "op_mnemonics": self.op_mnemonics,
            "kinds": [k.tolist() for k in self.kinds],
            "a0": [a.tolist() for a in self.a0],
            "a1": [a.tolist() for a in self.a1],
            "a2": [a.tolist() for a in self.a2],
            "a3": [a.tolist() for a in self.a3],
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "CompiledTrace":
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA:
            raise TraceError(f"unknown trace schema {schema!r}")
        return cls(
            workload_name=payload["workload"],
            n_threads=payload["n_threads"],
            max_ops_per_thread=payload["max_ops_per_thread"],
            page_size=payload["page_size"],
            footprint=payload["footprint"],
            regions=[tuple(r) for r in payload["regions"]],
            barrier_groups=payload["barrier_groups"],
            op_mnemonics=payload["op_mnemonics"],
            kinds=[array("b", k) for k in payload["kinds"]],
            a0=[array("q", a) for a in payload["a0"]],
            a1=[array("q", a) for a in payload["a1"]],
            a2=[array("q", a) for a in payload["a2"]],
            a3=[array("q", a) for a in payload["a3"]],
            fingerprint=payload["fingerprint"],
        )


def trace_fingerprint(key: Dict) -> str:
    """Stable digest over a capture's identifying inputs."""
    payload = json.dumps(key, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def capture_trace(workload, n_threads: int,
                  max_ops_per_thread: Optional[int] = None,
                  page_size: int = 4096,
                  key: Optional[Dict] = None) -> CompiledTrace:
    """Run ``workload``'s functional algorithm once; compile its streams.

    The capture consumes the per-thread generators with the same scheduling
    *semantics* as the engine: the per-thread op cap is checked before every
    ``next()``, and threads park at barriers until every active thread of
    the group arrives.  That matters for workloads whose later phases depend
    functionally on earlier phases of *other* threads (level-synchronous
    BFS, PageRank's convergence deltas) — within a phase the engine
    guarantee (streams never depend on execution mode) makes consumption
    order irrelevant, and across phases the barrier bookkeeping here is
    exactly the engine's.

    ``page_size`` must match the config the trace will replay under: the
    workload lays out its regions in a fresh address space with this page
    size.  ``key`` (optional) identifies the capture inputs (workload
    class, params, seed) for the trace cache fingerprint.
    """
    # Deferred import: workloads.base imports nothing from here, but the
    # AddressSpace lives next to the page table the addresses feed.
    from repro.vm.address_space import AddressSpace

    space = AddressSpace(page_size=page_size)
    workload.prepare(space)
    generators = workload.make_threads(n_threads)
    if len(generators) != n_threads:
        raise TraceError(
            f"workload produced {len(generators)} threads, expected {n_threads}")
    groups = list(workload.barrier_groups(n_threads))

    kinds = [array("b") for _ in range(n_threads)]
    a0 = [array("q") for _ in range(n_threads)]
    a1 = [array("q") for _ in range(n_threads)]
    a2 = [array("q") for _ in range(n_threads)]
    a3 = [array("q") for _ in range(n_threads)]
    op_index: Dict[str, int] = {}
    op_mnemonics: List[str] = []

    group_active: Dict[int, int] = defaultdict(int)
    for group in groups:
        group_active[group] += 1
    barrier_waiting: Dict[int, List[int]] = defaultdict(list)
    ops_done = [0] * n_threads
    runnable = deque(range(n_threads))
    cap = max_ops_per_thread

    while runnable:
        tid = runnable.popleft()
        gen = generators[tid]
        t_kinds, t_a0, t_a1, t_a2, t_a3 = (
            kinds[tid], a0[tid], a1[tid], a2[tid], a3[tid])
        done = ops_done[tid]
        finished = False
        while True:
            if cap is not None and done >= cap:
                finished = True
                break
            try:
                op = next(gen)
            except StopIteration:
                finished = True
                break
            done += 1
            kind = op.kind
            t_kinds.append(kind)
            if kind == KIND_LOAD:
                t_a0.append(op.addr)
                t_a1.append(1 if op.dep else 0)
                t_a2.append(0)
                t_a3.append(0)
            elif kind == KIND_PEI:
                mnemonic = op.op.mnemonic
                index = op_index.get(mnemonic)
                if index is None:
                    index = len(op_mnemonics)
                    op_index[mnemonic] = index
                    op_mnemonics.append(mnemonic)
                chain = op.chain
                if chain is None:
                    encoded_chain = 0
                elif isinstance(chain, int) and chain >= 0:
                    encoded_chain = chain + 1
                else:
                    raise TraceError(
                        f"chain id {chain!r} is not a small non-negative "
                        "int; the stream cannot be compiled")
                t_a0.append(op.addr)
                t_a1.append(index)
                t_a2.append(1 if op.wait_output else 0)
                t_a3.append(encoded_chain)
            elif kind == KIND_COMPUTE:
                t_a0.append(op.insts)
                t_a1.append(0)
                t_a2.append(0)
                t_a3.append(0)
            elif kind == KIND_STORE:
                t_a0.append(op.addr)
                t_a1.append(0)
                t_a2.append(0)
                t_a3.append(0)
            elif kind == KIND_FENCE:
                t_a0.append(0)
                t_a1.append(0)
                t_a2.append(0)
                t_a3.append(0)
            elif kind == KIND_BARRIER:
                group = op.group
                t_a0.append(group)
                t_a1.append(0)
                t_a2.append(0)
                t_a3.append(0)
                waiting = barrier_waiting[group]
                waiting.append(tid)
                if len(waiting) == group_active[group]:
                    runnable.extend(waiting)
                    barrier_waiting[group] = []
                break
            else:
                raise TraceError(f"unknown operation kind {kind}")
        ops_done[tid] = done
        if finished:
            group = groups[tid]
            group_active[group] -= 1
            waiting = barrier_waiting[group]
            if waiting and len(waiting) == group_active[group]:
                runnable.extend(waiting)
                barrier_waiting[group] = []

    if any(barrier_waiting.values()):
        raise TraceError(
            "barrier deadlock: threads still parked when the capture drained")

    base_key = dict(key) if key is not None else {"workload": workload.name}
    base_key.update({
        "n_threads": n_threads,
        "max_ops_per_thread": max_ops_per_thread,
        "page_size": page_size,
    })
    regions = [(region.name, region.base, region.size)
               for region in space.regions.values()]
    return CompiledTrace(
        workload_name=workload.name,
        n_threads=n_threads,
        max_ops_per_thread=max_ops_per_thread,
        page_size=page_size,
        footprint=space.footprint,
        regions=regions,
        barrier_groups=groups,
        op_mnemonics=op_mnemonics,
        kinds=kinds, a0=a0, a1=a1, a2=a2, a3=a3,
        fingerprint=trace_fingerprint(base_key),
    )
