"""Host processor model: trace operations and a bounded-MLP core."""

from repro.cpu.core import CoreModel
from repro.cpu.trace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    KIND_FENCE,
    KIND_LOAD,
    KIND_PEI,
    KIND_STORE,
    Barrier,
    Compute,
    Load,
    PFence,
    Pei,
    Store,
)

__all__ = [
    "Barrier",
    "Compute",
    "CoreModel",
    "KIND_BARRIER",
    "KIND_COMPUTE",
    "KIND_FENCE",
    "KIND_LOAD",
    "KIND_PEI",
    "KIND_STORE",
    "Load",
    "PFence",
    "Pei",
    "Store",
]
