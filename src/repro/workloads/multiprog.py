"""Multiprogrammed workload mixes (Section 7.3).

Combines two independent applications: each gets half of the cores (eight
threads apiece at paper scale), its own barrier group, and its own slice of
the shared address space.  Locality behaviour of the two applications mixes
in the shared L3 and locality monitor — the scenario where hardware-based
per-block locality profiling matters most.
"""

from typing import List

from repro.cpu.trace import Barrier, KIND_BARRIER
from repro.vm.address_space import AddressSpace, Region
from repro.workloads.base import Workload


class _NamespacedSpace:
    """A view of an AddressSpace that prefixes region names.

    Lets two workloads that use the same region names coexist in one
    process address space.
    """

    def __init__(self, parent: AddressSpace, prefix: str):
        self._parent = parent
        self._prefix = prefix

    def alloc(self, name: str, size: int, alignment: int = 64) -> Region:
        return self._parent.alloc(f"{self._prefix}.{name}", size, alignment)

    @property
    def page_size(self) -> int:
        return self._parent.page_size

    @property
    def regions(self):
        return self._parent.regions

    @property
    def footprint(self) -> int:
        return self._parent.footprint


def _retag_barriers(generator, group: int):
    """Rewrite the barrier group of a sub-workload's operation stream."""
    barrier = Barrier(group=group)
    for op in generator:
        if op.kind == KIND_BARRIER:
            yield barrier
        else:
            yield op


class MultiprogrammedWorkload(Workload):
    """Two applications sharing the machine, split half/half over threads."""

    def __init__(self, first: Workload, second: Workload, seed: int = 42):
        super().__init__(seed=seed)
        self.first = first
        self.second = second
        self.name = f"{first.name}+{second.name}"

    def prepare(self, space: AddressSpace) -> None:
        self.space = space
        self.first.prepare(_NamespacedSpace(space, "app0"))
        self.second.prepare(_NamespacedSpace(space, "app1"))

    def _split(self, n_threads: int) -> int:
        if n_threads < 2:
            raise ValueError("a multiprogrammed mix needs at least two threads")
        return n_threads // 2

    def make_threads(self, n_threads: int) -> List:
        half = self._split(n_threads)
        first_threads = self.first.make_threads(half)
        second_threads = self.second.make_threads(n_threads - half)
        return [_retag_barriers(g, 0) for g in first_threads] + [
            _retag_barriers(g, 1) for g in second_threads
        ]

    def barrier_groups(self, n_threads: int) -> List[int]:
        half = self._split(n_threads)
        return [0] * half + [1] * (n_threads - half)

    def verify(self) -> None:
        self.first.verify()
        self.second.verify()
