"""Machine learning and data mining workloads (Section 5.3)."""

from repro.workloads.ml.streamcluster import Streamcluster
from repro.workloads.ml.svm_rfe import SvmRfe

__all__ = ["Streamcluster", "SvmRfe"]
