"""SVM Recursive Feature Elimination kernel (Section 5.3).

The hot kernel computes dot products between one hyperplane vector ``w`` and
a very large number of input vectors ``x``.  The *dot product* PEI multiplies
one 4-dimensional double-precision chunk of ``x`` (in the target block) with
the matching chunk of ``w`` (32-byte input operand) and returns the 8-byte
partial sum.  RFE iterates the kernel, so the instance matrix is swept
multiple times — small data sets become cache-resident after the first pass.
"""

import numpy as np

from repro.core.isa import DOT_PRODUCT
from repro.cpu.trace import Barrier, Compute, Pei
from repro.util.rng import make_rng
from repro.workloads.base import ThreadChunks, Workload

CHUNK_DIMS = 4  # 4 float64 = a 32-byte half block
DOUBLE_BYTES = 8


class SvmRfe(Workload):
    """SVM-RFE dot-product kernel via 4-dim dot-product PEIs."""

    name = "SVM"

    def __init__(self, n_instances: int = 64, n_features: int = 256,
                 passes: int = 2, seed: int = 42):
        super().__init__(seed=seed)
        if n_features % CHUNK_DIMS:
            raise ValueError(f"features must be a multiple of {CHUNK_DIMS}")
        if n_instances <= 0 or passes <= 0:
            raise ValueError("instances and passes must be positive")
        self.n_instances = n_instances
        self.n_features = n_features
        self.passes = passes
        self.dots = None

    def prepare(self, space) -> None:
        self.space = space
        rng = make_rng(self.seed, "svm")
        self.x = rng.normal(size=(self.n_instances, self.n_features))
        self.w = rng.normal(size=self.n_features)
        self._x_region = space.alloc(
            "svm.x", self.n_instances * self.n_features * DOUBLE_BYTES
        )
        space.alloc("svm.w", self.n_features * DOUBLE_BYTES)
        self.dots = np.zeros(self.n_instances)

    def chunk_addr(self, instance: int, chunk: int) -> int:
        offset = (instance * self.n_features + chunk * CHUNK_DIMS) * DOUBLE_BYTES
        return self._x_region.base + offset

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        chunks = ThreadChunks(self.n_instances, n_threads)
        n_chunks = self.n_features // CHUNK_DIMS
        x = self.x
        w = self.w
        pei_index = 0
        for _ in range(self.passes):
            for i in chunks.range(thread):
                total = 0.0
                for j in range(n_chunks):
                    yield Pei(DOT_PRODUCT, self.chunk_addr(i, j),
                              chain=pei_index & 3)
                    pei_index += 1
                    lo = j * CHUNK_DIMS
                    total += float(np.dot(x[i, lo:lo + CHUNK_DIMS],
                                          w[lo:lo + CHUNK_DIMS]))
                    yield Compute(1)
                self.dots[i] = total
                yield Compute(2)
            yield Barrier()

    def verify(self) -> None:
        expected = self.x @ self.w
        if not np.allclose(expected, self.dots, rtol=1e-9, atol=1e-12):
            raise AssertionError("SVM dot products diverge from reference")
