"""Streamcluster (Section 5.3): online clustering of n-dimensional points.

The bottleneck is the Euclidean distance between points and a few cluster
centers.  The *Euclidean distance* PEI computes the distance contribution of
one 16-dimensional single-precision chunk: the data-point chunk lives in the
target cache block, the center chunk travels as a 64-byte input operand.
Because each point is read once against every center while the centers stay
in registers, the workload is read-dominated — the case that motivates
balanced dispatch (Section 7.4).
"""

import numpy as np

from repro.core.isa import EUCLIDEAN_DIST
from repro.cpu.trace import Barrier, Compute, Pei
from repro.util.rng import make_rng
from repro.workloads.base import ThreadChunks, Workload

CHUNK_DIMS = 16  # 16 float32 = one 64-byte cache block
FLOAT_BYTES = 4


class Streamcluster(Workload):
    """Point-to-center assignment via Euclidean-distance PEIs."""

    name = "SC"

    def __init__(self, n_points: int = 512, dims: int = 32, n_centers: int = 8,
                 seed: int = 42):
        super().__init__(seed=seed)
        if dims % CHUNK_DIMS:
            raise ValueError(f"dims must be a multiple of {CHUNK_DIMS}, got {dims}")
        if n_points <= n_centers:
            raise ValueError("need more points than centers")
        self.n_points = n_points
        self.dims = dims
        self.n_centers = n_centers
        self.assignments = None

    def prepare(self, space) -> None:
        self.space = space
        rng = make_rng(self.seed, "sc")
        self.points = rng.normal(size=(self.n_points, self.dims)).astype(np.float32)
        # Centers: a deterministic sample of the points, kept in their own
        # region (they are PEI *input operands*, not target blocks).
        center_idx = rng.choice(self.n_points, size=self.n_centers, replace=False)
        self.centers = self.points[center_idx].copy()
        self._points_region = space.alloc(
            "sc.points", self.n_points * self.dims * FLOAT_BYTES
        )
        space.alloc("sc.centers", self.n_centers * self.dims * FLOAT_BYTES)
        self.assignments = np.zeros(self.n_points, dtype=np.int64)

    def point_chunk_addr(self, point: int, chunk: int) -> int:
        offset = (point * self.dims + chunk * CHUNK_DIMS) * FLOAT_BYTES
        return self._points_region.base + offset

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        # Center-outer loop order, as in the paper's kernel description:
        # each cluster center is held in registers (it travels as the PEI's
        # input operand) and swept against *all* data points, so large point
        # sets are re-streamed from memory once per center.
        chunks = ThreadChunks(self.n_points, n_threads)
        n_chunks = self.dims // CHUNK_DIMS
        points = self.points
        centers = self.centers
        best_dist = np.full(self.n_points, np.inf)
        pei_index = 0
        for c in range(self.n_centers):
            for i in chunks.range(thread):
                # One PEI per 16-dimensional chunk; partial distances are
                # independent, so they overlap in the operand buffer.
                for j in range(n_chunks):
                    yield Pei(EUCLIDEAN_DIST, self.point_chunk_addr(i, j),
                              chain=pei_index & 3)
                    pei_index += 1
                    yield Compute(2)
                diff = points[i] - centers[c]
                dist = float(np.dot(diff, diff))
                if dist < best_dist[i]:
                    best_dist[i] = dist
                    self.assignments[i] = c
                yield Compute(3)
            yield Barrier()

    def verify(self) -> None:
        # argmin over exact pairwise squared distances.
        deltas = self.points[:, None, :] - self.centers[None, :, :]
        dists = np.einsum("pcd,pcd->pc", deltas, deltas)
        expected = np.argmin(dists, axis=1)
        if not np.array_equal(expected, self.assignments):
            raise AssertionError("streamcluster assignments diverge from reference")
