"""Histogram (Section 5.2).

Builds a 256-bin histogram of 32-bit integers.  The *histogram bin index*
PEI shifts each of the 16 words in a cache block by a given amount,
truncates to a byte, and returns all 16 bin indexes as a 16-byte output —
cutting the response traffic of reading the input stream by 4x.  Bin
counters live in per-thread private arrays merged at the end.
"""

import numpy as np

from repro.core.isa import HISTOGRAM_BIN
from repro.cpu.trace import Barrier, Compute, Pei, Store
from repro.util.rng import make_rng
from repro.workloads.base import ThreadChunks, Workload

BLOCK_BYTES = 64
INTS_PER_BLOCK = 16
N_BINS = 256


class Histogram(Workload):
    """256-bin histogram; one bin-index PEI per 64-byte input block."""

    name = "HG"

    def __init__(self, n_values: int = 100_000, shift: int = 22, seed: int = 42):
        super().__init__(seed=seed)
        if n_values <= 0:
            raise ValueError(f"value count must be positive, got {n_values}")
        if not 0 <= shift <= 24:
            raise ValueError(f"shift must leave an 8-bit bin index, got {shift}")
        self.n_values = n_values
        self.shift = shift
        self.histogram = np.zeros(N_BINS, dtype=np.int64)

    def prepare(self, space) -> None:
        self.space = space
        rng = make_rng(self.seed, "hg")
        self.data = rng.integers(0, 1 << 30, size=self.n_values, dtype=np.int64).astype(
            np.int32
        )
        self._data_region = space.alloc("hg.data", self.n_values * 4)
        self._merged_region = space.alloc("hg.merged", N_BINS * 8)
        self.histogram = np.zeros(N_BINS, dtype=np.int64)

    @property
    def n_blocks(self) -> int:
        return (self.n_values * 4 + BLOCK_BYTES - 1) // BLOCK_BYTES

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        chunks = ThreadChunks(self.n_blocks, n_threads)
        lo, hi = chunks.start(thread), chunks.end(thread)
        # Functional effect of this thread's whole chunk, computed upfront
        # with one vectorized pass (equivalent to the per-block updates).
        values = self.data[lo * INTS_PER_BLOCK:hi * INTS_PER_BLOCK]
        local = np.bincount((values >> self.shift) & (N_BINS - 1), minlength=N_BINS)
        base = self._data_region.base
        for block in range(lo, hi):
            # One PEI extracts the 16 bin indexes of the block; the 16 local
            # counter increments are register/L1 work.
            yield Pei(HISTOGRAM_BIN, base + block * BLOCK_BYTES,
                      chain=block & 3)
            yield Compute(INTS_PER_BLOCK)
        # Merge the private histogram into the shared one (few stores).
        self.histogram += local
        for i in range(0, N_BINS * 8, BLOCK_BYTES):
            yield Store(self._merged_region.base + i)
        yield Compute(N_BINS)
        yield Barrier()

    def verify(self) -> None:
        expected = np.bincount(
            (self.data >> self.shift) & (N_BINS - 1), minlength=N_BINS
        )
        if not np.array_equal(expected, self.histogram):
            raise AssertionError("histogram bins diverge from reference")
