"""In-memory data analytics workloads (Section 5.2)."""

from repro.workloads.analytics.hash_join import HashJoin
from repro.workloads.analytics.histogram import Histogram
from repro.workloads.analytics.radix_partition import RadixPartition

__all__ = ["HashJoin", "Histogram", "RadixPartition"]
