"""Hash Join (Section 5.2).

Builds a chained hash table from relation R (the skipped initialization
phase) and probes it with keys from relation S.  Each chain hop is the
paper's *hash table probing* PEI: it checks the keys of one bucket node and
returns the match result plus the next node address (9 output bytes).  The
software unrolls four independent probes per loop iteration so the
out-of-order core overlaps their dependent PEI chains — modelled with the
``chain`` tag of :class:`repro.cpu.trace.Pei`.
"""

from typing import Dict, List

import numpy as np

from repro.core.isa import HASH_PROBE
from repro.cpu.trace import Barrier, Compute, Pei
from repro.util.rng import make_rng
from repro.workloads.base import ThreadChunks, Workload

NODE_BYTES = 64  # one bucket node per cache block
KEYS_PER_NODE = 4  # 4 keys + 4 payloads + next pointer per 64-byte node
UNROLL = 4  # independent probe chains per loop iteration
_HASH_MULT = 0x9E3779B97F4A7C15


def bucket_hash(key: int, mask: int) -> int:
    return ((key * _HASH_MULT) >> 17) & mask


class HashJoin(Workload):
    """Build-and-probe hash join; probes are chained hash-probe PEIs."""

    name = "HJ"

    def __init__(self, build_rows: int = 4096, probe_rows: int = 16384, seed: int = 42):
        super().__init__(seed=seed)
        if build_rows <= 0 or probe_rows <= 0:
            raise ValueError("relation sizes must be positive")
        self.build_rows = build_rows
        self.probe_rows = probe_rows
        self.matches = 0

    def prepare(self, space) -> None:
        self.space = space
        rng = make_rng(self.seed, "hj")
        # Unique build keys; probe keys hit ~50% of the time.
        self.r_keys = rng.permutation(self.build_rows * 2)[: self.build_rows].astype(
            np.int64
        )
        self.s_keys = rng.integers(0, self.build_rows * 2, size=self.probe_rows).astype(
            np.int64
        )
        self._r_keyset = set(int(k) for k in self.r_keys)
        # Hash-table geometry: ~2 keys per bucket before chaining.
        n_buckets = 1
        while n_buckets * KEYS_PER_NODE < self.build_rows * 2:
            n_buckets *= 2
        self.n_buckets = n_buckets
        buckets = space.alloc("hj.buckets", n_buckets * NODE_BYTES)
        # Build the chains functionally (initialization is not simulated).
        chains: Dict[int, List[List[int]]] = {}
        mask = n_buckets - 1
        for key in self.r_keys:
            b = bucket_hash(int(key), mask)
            nodes = chains.setdefault(b, [[]])
            if len(nodes[-1]) >= KEYS_PER_NODE:
                nodes.append([])
            nodes[-1].append(int(key))
        n_overflow = sum(max(0, len(nodes) - 1) for nodes in chains.values())
        overflow = space.alloc("hj.overflow", max(1, n_overflow) * NODE_BYTES)
        space.alloc("hj.probe_keys", self.probe_rows * 8)
        # Materialize per-bucket node address lists and key contents.
        self._node_addrs: Dict[int, List[int]] = {}
        self._node_keys: Dict[int, List[List[int]]] = {}
        next_overflow = 0
        for b, nodes in chains.items():
            addrs = [buckets.base + b * NODE_BYTES]
            for _ in nodes[1:]:
                addrs.append(overflow.base + next_overflow * NODE_BYTES)
                next_overflow += 1
            self._node_addrs[b] = addrs
            self._node_keys[b] = nodes
        self._bucket_mask = mask
        self._buckets_base = buckets.base
        self.matches = 0

    def _chain_for(self, key: int) -> List[int]:
        """Node addresses a probe of ``key`` visits (stops at the match)."""
        b = bucket_hash(key, self._bucket_mask)
        addrs = self._node_addrs.get(b)
        if addrs is None:
            # Empty bucket: the probe still reads the bucket head node.
            return [self._buckets_base + b * NODE_BYTES]
        visited = []
        for addr, keys in zip(addrs, self._node_keys[b]):
            visited.append(addr)
            if key in keys:
                return visited
        return visited

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        chunks = ThreadChunks(self.probe_rows, n_threads)
        keys = self.s_keys
        r_keyset = self._r_keyset
        indices = list(chunks.range(thread))
        for group_start in range(0, len(indices), UNROLL):
            group = indices[group_start:group_start + UNROLL]
            yield Compute(3 * len(group))  # hash computation per probe
            chains = [self._chain_for(int(keys[i])) for i in group]
            positions = [0] * len(chains)
            remaining = sum(len(c) for c in chains)
            while remaining:
                for c, chain_nodes in enumerate(chains):
                    if positions[c] < len(chain_nodes):
                        # Dependent hop of probe c; independent of other
                        # probes, so the four chains overlap.
                        yield Pei(HASH_PROBE, chain_nodes[positions[c]], chain=c)
                        positions[c] += 1
                        remaining -= 1
                yield Compute(2)
            for i in group:
                if int(keys[i]) in r_keyset:
                    self.matches += 1
        yield Barrier()

    def verify(self) -> None:
        expected = int(np.isin(self.s_keys, self.r_keys).sum())
        if expected != self.matches:
            raise AssertionError(
                f"hash join found {self.matches} matches, expected {expected}"
            )
