"""Radix Partitioning (Section 5.2).

Partitions 32-bit keys into 256 radix partitions: a histogram pass (reusing
the HG *histogram bin index* PEI) computes per-thread, per-partition counts;
a prefix sum assigns output cursors; a scatter pass moves every key to its
partition.  The paper simulates a database server re-partitioning the same
relation for 100 consecutive queries; we default to a smaller number of
passes, which preserves the access pattern that matters — repeated sweeps
over the same data, giving small inputs high reuse.
"""

import numpy as np

from repro.core.isa import HISTOGRAM_BIN
from repro.cpu.trace import Barrier, Compute, Load, Pei, Store
from repro.util.rng import make_rng
from repro.workloads.base import ThreadChunks, Workload

BLOCK_BYTES = 64
KEYS_PER_BLOCK = 16
N_PARTITIONS = 256


class RadixPartition(Workload):
    """Parallel radix partitioning: histogram PEIs + scatter passes."""

    name = "RP"

    def __init__(self, n_rows: int = 8192, passes: int = 3, shift: int = 22,
                 seed: int = 42):
        super().__init__(seed=seed)
        if n_rows <= 0 or passes <= 0:
            raise ValueError("row count and pass count must be positive")
        self.n_rows = n_rows
        self.passes = passes
        self.shift = shift
        self.output = None

    def prepare(self, space) -> None:
        self.space = space
        rng = make_rng(self.seed, "rp")
        self.keys = rng.integers(0, 1 << 30, size=self.n_rows, dtype=np.int64).astype(
            np.int32
        )
        self._in_region = space.alloc("rp.keys", self.n_rows * 4)
        self._out_region = space.alloc("rp.partitions", self.n_rows * 4)
        self.output = np.zeros(self.n_rows, dtype=np.int32)

    def _bins(self, keys: np.ndarray) -> np.ndarray:
        return (keys >> self.shift) & (N_PARTITIONS - 1)

    @property
    def n_blocks(self) -> int:
        return (self.n_rows * 4 + BLOCK_BYTES - 1) // BLOCK_BYTES

    def make_threads(self, n_threads: int):
        # Scatter plan: per-thread histograms and exclusive output cursors,
        # partition-major then thread-major (the classic parallel layout).
        chunks = ThreadChunks(self.n_rows, n_threads)
        bins = self._bins(self.keys)
        per_thread = np.zeros((n_threads, N_PARTITIONS), dtype=np.int64)
        for t in range(n_threads):
            per_thread[t] = np.bincount(bins[chunks.start(t):chunks.end(t)],
                                        minlength=N_PARTITIONS)
        flat = per_thread.T.reshape(-1)  # partition-major, thread-minor
        cursors = np.zeros_like(flat)
        np.cumsum(flat[:-1], out=cursors[1:])
        offsets = cursors.reshape(N_PARTITIONS, n_threads).T.copy()
        return [
            self._thread(t, chunks, bins, offsets[t].copy())
            for t in range(n_threads)
        ]

    def _thread(self, thread: int, chunks: ThreadChunks, bins: np.ndarray,
                cursors: np.ndarray):
        lo, hi = chunks.start(thread), chunks.end(thread)
        in_base = self._in_region.base
        out_base = self._out_region.base
        keys = self.keys
        output = self.output
        for pass_no in range(self.passes):
            pass_cursors = cursors.copy()
            # Phase 1: histogram over this thread's blocks via the HG PEI.
            first_block = (lo * 4) // BLOCK_BYTES
            last_block = (hi * 4 + BLOCK_BYTES - 1) // BLOCK_BYTES
            for block in range(first_block, last_block):
                yield Pei(HISTOGRAM_BIN, in_base + block * BLOCK_BYTES,
                          chain=block & 3)
                yield Compute(KEYS_PER_BLOCK)
            yield Barrier()
            # Phase 2: scatter every key to its partition slot.
            for i in range(lo, hi):
                if i % KEYS_PER_BLOCK == 0:
                    yield Load(in_base + i * 4)
                p = bins[i]
                dest = pass_cursors[p]
                pass_cursors[p] += 1
                if pass_no == 0:
                    output[dest] = keys[i]  # functional effect
                yield Compute(2)
                yield Store(out_base + int(dest) * 4)
            yield Barrier()

    def verify(self) -> None:
        bins = self._bins(self.keys)
        order = np.argsort(bins, kind="stable")
        expected = self.keys[order]
        if not np.array_equal(expected, self.output):
            raise AssertionError("radix partition output diverges from reference")
