"""Workload abstraction: an algorithm that emits a timed operation stream."""

import abc
from typing import Iterator, List, Optional

from repro.vm.address_space import AddressSpace


class Workload(abc.ABC):
    """Base class of the case-study applications.

    Lifecycle: construct with parameters -> :meth:`prepare` allocates the
    data structures in an :class:`AddressSpace` and synthesizes input data ->
    :meth:`make_threads` returns one operation generator per software thread
    -> the engine drives the generators -> :meth:`verify` (optional) checks
    the functional result.

    ``use_pei`` selects between the PEI implementation and the pure
    host-instruction implementation of the kernel; the paper's configurations
    all use PEIs (the Ideal-Host baseline retires them as ordinary host
    instructions), so ``use_pei`` defaults to True.
    """

    #: Short name as used in the paper's figures (e.g. "PR").
    name: str = "workload"

    def __init__(self, seed: int = 42):
        self.seed = seed
        self.space: Optional[AddressSpace] = None

    @abc.abstractmethod
    def prepare(self, space: AddressSpace) -> None:
        """Allocate regions and synthesize the input data."""

    @abc.abstractmethod
    def make_threads(self, n_threads: int) -> List[Iterator]:
        """Return one operation generator per thread."""

    def barrier_groups(self, n_threads: int) -> List[int]:
        """Barrier group of each thread (all threads together by default)."""
        return [0] * n_threads

    @property
    def footprint(self) -> int:
        """Bytes of data allocated by :meth:`prepare`."""
        if self.space is None:
            raise RuntimeError("prepare() has not been called")
        return self.space.footprint

    def verify(self) -> None:
        """Check the functional result; raises AssertionError on mismatch."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ThreadChunks:
    """Splits ``total`` items into ``n_threads`` contiguous chunks.

    The standard static schedule of a ``parallel_for``: thread ``i`` gets
    ``[start(i), end(i))``.
    """

    def __init__(self, total: int, n_threads: int):
        if n_threads <= 0:
            raise ValueError(f"thread count must be positive, got {n_threads}")
        if total < 0:
            raise ValueError(f"item count must be non-negative, got {total}")
        self.total = total
        self.n_threads = n_threads

    def start(self, thread: int) -> int:
        return (self.total * thread) // self.n_threads

    def end(self, thread: int) -> int:
        return (self.total * (thread + 1)) // self.n_threads

    def range(self, thread: int) -> range:
        return range(self.start(thread), self.end(thread))
