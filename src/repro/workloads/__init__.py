"""The ten data-intensive workloads of the paper's case study (Section 5).

Every workload is a *real* parallel algorithm operating on its own data in a
simulated address space; as it runs it emits the operation stream (loads,
stores, PEIs, fences, barriers) that the timing engine replays.  Functional
results (PageRank values, BFS levels, join output, ...) are therefore
computed for real and checked by the test suite.
"""

from repro.workloads.base import ThreadChunks, Workload
from repro.workloads.multiprog import MultiprogrammedWorkload
from repro.workloads.registry import (
    INPUT_SIZES,
    WORKLOAD_NAMES,
    make_workload,
)

__all__ = [
    "INPUT_SIZES",
    "MultiprogrammedWorkload",
    "ThreadChunks",
    "WORKLOAD_NAMES",
    "Workload",
    "make_workload",
]
