"""Parallel PageRank (Figure 1 of the paper).

The inner loop (line 10 of Figure 1) updates ``next_pagerank`` of every
successor with the *double-precision floating-point add* PEI — the kernel
whose host-vs-memory trade-off motivates the entire architecture (Figure 2).
A pfence separates the scatter loop from the normal-instruction update loop,
exactly where Section 3.2 places it.
"""

import numpy as np

from repro.core.isa import FP_ADD
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei, Store
from repro.workloads.graph.layout import GraphWorkloadBase

DAMPING = 0.85


class PageRank(GraphWorkloadBase):
    """Parallel PageRank: one FP-add PEI per edge (the Fig. 1 kernel)."""

    name = "PR"
    properties = ("pagerank", "next_pagerank")

    def __init__(self, *args, iterations: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        if iterations <= 0:
            raise ValueError(f"iteration count must be positive, got {iterations}")
        self.iterations = iterations

    def init_data(self) -> None:
        n = self.graph.n_vertices
        self.pagerank = np.full(n, 1.0 / n)
        self.next_pagerank = np.full(n, (1.0 - DAMPING) / n)
        self.out_degrees = np.maximum(self.graph.out_degrees(), 1)
        self.diff = 0.0
        self._diff_region = None

    def prepare(self, space) -> None:
        super().prepare(space)
        self._diff_region = space.alloc("pr.diff", 64)

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        graph = self.graph
        layout = self.layout
        indptr = graph.indptr
        indices = graph.indices
        chunk = self.vertex_range(thread, n_threads)
        base = (1.0 - DAMPING) / graph.n_vertices
        for _ in range(self.iterations):
            # Scatter phase: delta of v pushed to each successor via PEI.
            for v in chunk:
                yield Load(layout.prop_addr("pagerank", v))
                yield Load(layout.indptr_addr(v))
                yield Compute(4)  # delta = 0.85 * pagerank / out_degree
                delta = DAMPING * self.pagerank[v] / self.out_degrees[v]
                for e in range(indptr[v], indptr[v + 1]):
                    w = indices[e]
                    yield Load(layout.edge_addr(e))
                    self.next_pagerank[w] += delta  # functional atomic add
                    yield Pei(FP_ADD, layout.prop_addr("next_pagerank", w))
            # Normal instructions read next_pagerank next: pfence required.
            yield PFence()
            yield Barrier()
            # Update phase: swap ranks, accumulate the L1 difference locally
            # and publish it once per thread with a single PEI.
            local_diff = 0.0
            for v in chunk:
                yield Load(layout.prop_addr("next_pagerank", v))
                yield Compute(3)
                local_diff += abs(self.next_pagerank[v] - self.pagerank[v])
                self.pagerank[v] = self.next_pagerank[v]
                self.next_pagerank[v] = base
                yield Store(layout.prop_addr("pagerank", v))
                yield Store(layout.prop_addr("next_pagerank", v))
            self.diff += local_diff
            yield Pei(FP_ADD, self._diff_region.base)
            yield PFence()
            yield Barrier()
            self.diff = 0.0  # reset for the next iteration (post-barrier)

    def verify(self) -> None:
        n = self.graph.n_vertices
        expected = np.full(n, 1.0 / n)
        degrees = self.out_degrees
        for _ in range(self.iterations):
            nxt = np.full(n, (1.0 - DAMPING) / n)
            deltas = DAMPING * expected / degrees
            np.add.at(nxt, self.graph.indices,
                      np.repeat(deltas, np.diff(self.graph.indptr)))
            expected = nxt
        if not np.allclose(expected, self.pagerank, rtol=1e-9, atol=1e-12):
            raise AssertionError("PageRank values diverge from reference")
