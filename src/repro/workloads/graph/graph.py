"""Compressed-sparse-row graphs for the graph workloads."""

from typing import Optional

import numpy as np


class CsrGraph:
    """A directed graph in CSR form (out-edges).

    ``indptr`` has ``n + 1`` entries; the successors of vertex ``v`` are
    ``indices[indptr[v]:indptr[v+1]]``.  Optional per-edge ``weights`` are
    used by SSSP.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 weights: Optional[np.ndarray] = None):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr does not describe indices")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) and (indices.min() < 0 or indices.max() >= len(indptr) - 1):
            raise ValueError("edge target out of range")
        self.indptr = indptr
        self.indices = indices
        self.weights = None if weights is None else np.asarray(weights, dtype=np.int64)
        if self.weights is not None and len(self.weights) != len(indices):
            raise ValueError("weights must align with indices")

    @classmethod
    def from_edges(cls, n_vertices: int, sources: np.ndarray, targets: np.ndarray,
                   weights: Optional[np.ndarray] = None) -> "CsrGraph":
        """Build a CSR graph from an edge list (kept in input order per source)."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        counts = np.bincount(sources, minlength=n_vertices)
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        w = None
        if weights is not None:
            w = np.asarray(weights, dtype=np.int64)[order]
        return cls(indptr, targets, w)

    @property
    def n_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        return len(self.indices)

    def out_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def successors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def symmetrized(self) -> "CsrGraph":
        """Return the undirected version (each edge mirrored, self-dedup'd)."""
        sources = np.repeat(np.arange(self.n_vertices, dtype=np.int64),
                            np.diff(self.indptr))
        all_src = np.concatenate([sources, self.indices])
        all_dst = np.concatenate([self.indices, sources])
        # Deduplicate mirrored edge pairs.
        keys = all_src * self.n_vertices + all_dst
        _, unique_idx = np.unique(keys, return_index=True)
        return CsrGraph.from_edges(self.n_vertices, all_src[unique_idx],
                                   all_dst[unique_idx])

    def __repr__(self) -> str:
        return f"CsrGraph({self.n_vertices} vertices, {self.n_edges} edges)"
