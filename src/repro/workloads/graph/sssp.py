"""Single-Source Shortest Path: parallel Bellman-Ford (Section 5.1).

Repeatedly iterates over vertices whose distance changed in the previous
round and relaxes their outgoing edges with the *8-byte atomic integer min*
PEI (the same operation BFS and WCC use).
"""

import numpy as np

from repro.core.isa import INT_MIN
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei
from repro.workloads.graph.layout import GraphWorkloadBase

INFINITY = np.iinfo(np.int64).max // 2  # headroom so dist+weight never wraps


class SingleSourceShortestPath(GraphWorkloadBase):
    """Parallel Bellman-Ford with atomic-min distance relaxations."""

    name = "SP"
    properties = ("distance",)

    def __init__(self, *args, source: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.source = source

    def init_data(self) -> None:
        if not 0 <= self.source < self.graph.n_vertices:
            raise ValueError(f"source {self.source} out of range")
        if self.graph.weights is None:
            raise ValueError("SSSP requires an edge-weighted graph")
        n = self.graph.n_vertices
        self.distance = np.full(n, INFINITY, dtype=np.int64)
        self.distance[self.source] = 0
        # Round -> active-vertex cache; round r relaxes vertices whose
        # distance changed during round r-1.
        self._changed_round = np.full(n, -1, dtype=np.int64)
        self._changed_round[self.source] = 0
        self._active = {0: np.array([self.source], dtype=np.int64)}

    def _active_for(self, rnd: int) -> np.ndarray:
        active = self._active.get(rnd)
        if active is None:
            active = np.flatnonzero(self._changed_round == rnd).astype(np.int64)
            self._active[rnd] = active
        return active

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        graph = self.graph
        layout = self.layout
        indptr = graph.indptr
        indices = graph.indices
        weights = graph.weights
        distance = self.distance
        changed_round = self._changed_round
        rnd = 0
        while True:
            active = self._active_for(rnd)
            if len(active) == 0:
                return
            for u in self.chunk_of(active, thread, n_threads):
                yield Load(layout.prop_addr("distance", int(u)))
                yield Load(layout.indptr_addr(int(u)))
                du = distance[u]
                for e in range(indptr[u], indptr[u + 1]):
                    w = indices[e]
                    yield Load(layout.edge_addr(e))
                    yield Load(layout.weight_addr(e))
                    yield Compute(2)
                    candidate = du + weights[e]
                    if candidate < distance[w]:
                        distance[w] = candidate  # functional atomic min
                        changed_round[w] = rnd + 1
                    yield Pei(INT_MIN, layout.prop_addr("distance", w))
            yield PFence()
            yield Barrier()
            rnd += 1

    def verify(self) -> None:
        # Reference Bellman-Ford over the same weighted graph.
        n = self.graph.n_vertices
        expected = np.full(n, INFINITY, dtype=np.int64)
        expected[self.source] = 0
        sources = np.repeat(np.arange(n, dtype=np.int64),
                            np.diff(self.graph.indptr))
        # Iterative relaxation to fixpoint (clear and adequate at test scale).
        changed = True
        while changed:
            candidate = expected[sources] + self.graph.weights
            new = expected.copy()
            np.minimum.at(new, self.graph.indices, candidate)
            changed = bool(np.any(new < expected))
            expected = new
        if not np.array_equal(expected, self.distance):
            raise AssertionError("SSSP distances diverge from reference")
