"""Average Teenage Follower (Section 5.1).

Counts, for each vertex, the number of its teenage followers: every teenager
vertex increments the follower counter of each of its successors.  The
increment is the paper's *8-byte atomic integer increment* PEI — a writer
operation with no input or output operands.
"""

import numpy as np

from repro.core.isa import INT_INCREMENT
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei
from repro.util.rng import make_rng
from repro.workloads.graph.layout import GraphWorkloadBase

TEEN_FRACTION = 0.25


class AverageTeenageFollower(GraphWorkloadBase):
    """ATF: count teenage followers via 8-byte atomic-increment PEIs."""

    name = "ATF"
    properties = ("teen", "followers")

    def init_data(self) -> None:
        rng = make_rng(self.seed, "atf-teens")
        self.teen = rng.random(self.graph.n_vertices) < TEEN_FRACTION
        self.followers = np.zeros(self.graph.n_vertices, dtype=np.int64)

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        graph = self.graph
        layout = self.layout
        indptr = graph.indptr
        indices = graph.indices
        teen = self.teen
        followers = self.followers
        for v in self.vertex_range(thread, n_threads):
            # Read the teen flag and the CSR offsets of v (sequential scan).
            yield Load(layout.prop_addr("teen", v))
            yield Load(layout.indptr_addr(v))
            if not teen[v]:
                continue
            yield Compute(2)
            for e in range(indptr[v], indptr[v + 1]):
                w = indices[e]
                yield Load(layout.edge_addr(e))
                followers[w] += 1  # functional effect of the PEI
                yield Pei(INT_INCREMENT, layout.prop_addr("followers", w))
        yield PFence()
        yield Barrier()

    def verify(self) -> None:
        expected = np.zeros(self.graph.n_vertices, dtype=np.int64)
        teen_sources = np.flatnonzero(self.teen)
        for v in teen_sources:
            np.add.at(expected, self.graph.successors(v), 1)
        if not np.array_equal(expected, self.followers):
            raise AssertionError("ATF follower counts diverge from reference")
