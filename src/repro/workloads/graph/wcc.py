"""Weakly Connected Components via parallel label propagation (Section 5.1).

Each vertex starts with a unique label; labels collapse to the component
minimum by propagating through edges with the *8-byte atomic integer min*
PEI.  Edge direction is ignored for weak connectivity, so the workload runs
on the symmetrized graph.
"""

import numpy as np

from repro.core.isa import INT_MIN
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei
from repro.workloads.graph.graph import CsrGraph
from repro.workloads.graph.layout import GraphWorkloadBase


class WeaklyConnectedComponents(GraphWorkloadBase):
    """Label propagation to the component minimum via atomic-min PEIs."""

    name = "WCC"
    properties = ("label",)

    def transform_graph(self, graph: CsrGraph) -> CsrGraph:
        return graph.symmetrized()

    def init_data(self) -> None:
        n = self.graph.n_vertices
        self.label = np.arange(n, dtype=np.int64)
        # Per-round change counters, shared across threads; a round with no
        # label change terminates the propagation.
        self._round_changes = {}

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        graph = self.graph
        layout = self.layout
        indptr = graph.indptr
        indices = graph.indices
        label = self.label
        chunk = self.vertex_range(thread, n_threads)
        rnd = 0
        while True:
            changes = 0
            for v in chunk:
                yield Load(layout.prop_addr("label", v))
                yield Load(layout.indptr_addr(v))
                lv = label[v]
                for e in range(indptr[v], indptr[v + 1]):
                    w = indices[e]
                    yield Load(layout.edge_addr(e))
                    if lv < label[w]:
                        label[w] = lv  # functional atomic min
                        changes += 1
                    yield Pei(INT_MIN, layout.prop_addr("label", w))
                yield Compute(1)
            self._round_changes[rnd] = self._round_changes.get(rnd, 0) + changes
            yield PFence()
            yield Barrier()
            if self._round_changes.get(rnd, 0) == 0:
                return
            rnd += 1

    def verify(self) -> None:
        # Labels must induce exactly the weakly connected components.
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components

        n = self.graph.n_vertices
        matrix = csr_matrix(
            (np.ones(self.graph.n_edges, dtype=np.int8),
             self.graph.indices, self.graph.indptr),
            shape=(n, n),
        )
        n_components, membership = connected_components(matrix, directed=False)
        if len(np.unique(self.label)) != n_components:
            raise AssertionError("WCC produced the wrong number of components")
        # Within one reference component every vertex must share one label.
        for component in range(n_components):
            labels = np.unique(self.label[membership == component])
            if len(labels) != 1:
                raise AssertionError("WCC split a connected component")
