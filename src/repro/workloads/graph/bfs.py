"""Parallel level-synchronous Breadth-First Search (Section 5.1).

Each vertex keeps a 'level' field; frontier vertices relax their neighbors
with the *8-byte atomic integer min* PEI.  Levels are separated by a pfence
(normal reads of the level array follow PEI writes) and a thread barrier.
"""

import numpy as np

from repro.core.isa import INT_MIN
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei
from repro.workloads.graph.layout import GraphWorkloadBase

INFINITY = np.iinfo(np.int64).max


class BreadthFirstSearch(GraphWorkloadBase):
    """Level-synchronous BFS with atomic-min level relaxations."""

    name = "BFS"
    properties = ("level",)

    def __init__(self, *args, source: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.source = source

    def init_data(self) -> None:
        if not 0 <= self.source < self.graph.n_vertices:
            raise ValueError(f"source {self.source} out of range")
        self.level = np.full(self.graph.n_vertices, INFINITY, dtype=np.int64)
        self.level[self.source] = 0
        # Depth -> frontier cache, shared by all threads (computed once).
        self._frontiers = {0: np.array([self.source], dtype=np.int64)}
        # The frontier lives in memory as a queue region; reuse one region
        # sized for the worst case (every vertex enqueued once).
        self._frontier_base = None

    def prepare(self, space) -> None:
        super().prepare(space)
        self._frontier_base = space.alloc(
            "bfs.frontier", self.graph.n_vertices * 8
        ).base

    def _frontier(self, depth: int) -> np.ndarray:
        frontier = self._frontiers.get(depth)
        if frontier is None:
            # All relaxations of depth-1 completed before the barrier, so
            # the level array deterministically defines this frontier.
            frontier = np.flatnonzero(self.level == depth).astype(np.int64)
            self._frontiers[depth] = frontier
        return frontier

    def make_threads(self, n_threads: int):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread: int, n_threads: int):
        graph = self.graph
        layout = self.layout
        indptr = graph.indptr
        indices = graph.indices
        level = self.level
        depth = 0
        while True:
            frontier = self._frontier(depth)
            if len(frontier) == 0:
                return
            for i, u in enumerate(self.chunk_of(frontier, thread, n_threads)):
                yield Load(self._frontier_base + int(i) * 8)
                yield Load(layout.indptr_addr(int(u)))
                next_level = depth + 1
                for e in range(indptr[u], indptr[u + 1]):
                    w = indices[e]
                    yield Load(layout.edge_addr(e))
                    if next_level < level[w]:
                        level[w] = next_level  # functional atomic min
                    yield Pei(INT_MIN, layout.prop_addr("level", w))
                yield Compute(2)
            yield PFence()
            yield Barrier()
            depth += 1

    def verify(self) -> None:
        expected = np.full(self.graph.n_vertices, INFINITY, dtype=np.int64)
        expected[self.source] = 0
        frontier = [self.source]
        depth = 0
        while frontier:
            nxt = []
            for u in frontier:
                for w in self.graph.successors(u):
                    if expected[w] > depth + 1:
                        expected[w] = depth + 1
                        nxt.append(int(w))
            frontier = nxt
            depth += 1
        if not np.array_equal(expected, self.level):
            raise AssertionError("BFS levels diverge from reference")
