"""Large-scale graph processing workloads (Section 5.1)."""

from repro.workloads.graph.atf import AverageTeenageFollower
from repro.workloads.graph.bfs import BreadthFirstSearch
from repro.workloads.graph.generators import (
    GRAPH_SUITE,
    GraphSpec,
    generate_power_law_graph,
    make_suite_graph,
)
from repro.workloads.graph.graph import CsrGraph
from repro.workloads.graph.pagerank import PageRank
from repro.workloads.graph.sssp import SingleSourceShortestPath
from repro.workloads.graph.wcc import WeaklyConnectedComponents

__all__ = [
    "AverageTeenageFollower",
    "BreadthFirstSearch",
    "CsrGraph",
    "GRAPH_SUITE",
    "GraphSpec",
    "PageRank",
    "SingleSourceShortestPath",
    "WeaklyConnectedComponents",
    "generate_power_law_graph",
    "make_suite_graph",
]
