"""Synthetic power-law graph suite.

The paper evaluates on nine real-world SNAP/LAW graphs (62 K to 5 M
vertices).  Those datasets are not available offline, so we synthesize
power-law graphs with the same *roles*: matching names, the same
vertex-count ordering, approximately the original average degrees, and a
Zipf-skewed in-degree distribution (the "power-law degree distribution"
property Section 7.1 credits for Locality-Aware's wins on medium graphs).
Vertex counts are scaled down 64x, the same factor by which the default
experiment machine scales the last-level cache — preserving the
footprint-to-LLC ratio that drives every locality result.
"""

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.util.rng import make_rng
from repro.workloads.graph.graph import CsrGraph


@dataclass(frozen=True)
class GraphSpec:
    """One synthetic stand-in for a paper graph."""

    name: str
    n_vertices: int  # scaled (original / 64)
    avg_degree: float
    original_vertices: int
    skew: float = 0.65  # Zipf rank exponent (~power-law count exponent 2.5)


#: The nine graphs of Figures 2 and 8, in ascending vertex-count order
#: (the order the paper sorts its x-axes by).  Original vertex counts from
#: the SNAP / LAW dataset descriptions; scaled counts are original / 16 —
#: the same factor by which the default machine scales its caches, so the
#: footprint-to-LLC ratio of every graph matches the paper's.
GRAPH_SUITE: Dict[str, GraphSpec] = {
    spec.name: spec
    for spec in (
        GraphSpec("p2p-Gnutella31", 3_910, 2.4, 62_586),
        GraphSpec("soc-Slashdot0811", 4_835, 11.7, 77_360),
        GraphSpec("web-Stanford", 17_620, 8.2, 281_903),
        GraphSpec("amazon-2008", 45_960, 7.0, 735_323),
        GraphSpec("frwiki-2013", 84_440, 25.4, 1_350_986),
        GraphSpec("wiki-Talk", 149_650, 2.1, 2_394_385),
        GraphSpec("cit-Patents", 235_920, 4.4, 3_774_768),
        GraphSpec("soc-LiveJournal1", 302_970, 14.2, 4_847_571),
        GraphSpec("ljournal-2008", 335_200, 14.7, 5_363_260),
    )
}


#: Maximum fraction of all edges pointing at a single vertex.  Real social
#: graphs have a head cutoff (soc-LiveJournal1's top in-degree is ~0.03% of
#: all edges); an uncapped Zipf head would oversubscribe one cache block
#: with atomic updates, which no real input of the paper does.
MAX_TARGET_SHARE = 0.0005


def zipf_targets(rng: np.random.Generator, n_vertices: int, count: int,
                 skew: float, max_share: float = MAX_TARGET_SHARE) -> np.ndarray:
    """Draw ``count`` vertex ids with a Zipf(``skew``) popularity bias.

    Low ids are "celebrities" with very high in-degree; the heavy tail gives
    most vertices only a handful of incoming edges.  The head of the
    distribution is capped at ``max_share`` of the total mass.  Sampling by
    inverse transform over a truncated Zipf CDF keeps generation vectorized.
    """
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    # Cap the head at max_share of the mass, but never below ~20x the
    # average share, so small graphs keep a visible power-law head.
    cap = max(max_share, 20.0 / n_vertices) * weights.sum()
    weights = np.minimum(weights, cap)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(count)
    ids = np.searchsorted(cdf, draws, side="left")
    # Shuffle identity -> vertex id mapping deterministically so popular
    # vertices are spread over the address space rather than clustered.
    perm = rng.permutation(n_vertices)
    return perm[ids]


def generate_power_law_graph(
    n_vertices: int,
    avg_degree: float,
    seed: int = 42,
    skew: float = 0.65,
) -> CsrGraph:
    """Generate a directed graph with Zipf-skewed in-degrees."""
    if n_vertices <= 1:
        raise ValueError(f"need at least two vertices, got {n_vertices}")
    if avg_degree <= 0:
        raise ValueError(f"average degree must be positive, got {avg_degree}")
    rng = make_rng(seed, "power-law", n_vertices)
    n_edges = max(1, int(round(n_vertices * avg_degree)))
    # Out-degrees: lightly skewed (geometric-ish) around the average.
    raw = rng.exponential(scale=avg_degree, size=n_vertices)
    out_degrees = np.maximum(1, np.round(raw * (n_edges / max(raw.sum(), 1e-9)))).astype(
        np.int64
    )
    # Adjust to hit the exact edge count.
    diff = n_edges - int(out_degrees.sum())
    if diff > 0:
        bump = rng.integers(0, n_vertices, size=diff)
        np.add.at(out_degrees, bump, 1)
    elif diff < 0:
        for _ in range(-diff):
            candidates = np.flatnonzero(out_degrees > 1)
            if len(candidates) == 0:
                break
            out_degrees[candidates[rng.integers(0, len(candidates))]] -= 1
    sources = np.repeat(np.arange(n_vertices, dtype=np.int64), out_degrees)
    targets = zipf_targets(rng, n_vertices, len(sources), skew)
    weights = rng.integers(1, 16, size=len(sources), dtype=np.int64)
    return CsrGraph.from_edges(n_vertices, sources, targets, weights)


_SUITE_CACHE: Dict[tuple, CsrGraph] = {}


def make_suite_graph(name: str, seed: int = 42) -> CsrGraph:
    """Generate the synthetic stand-in for one of the paper's nine graphs.

    Graphs are memoized by (name, seed): they are read-only inputs, and the
    benchmark harness re-instantiates workloads for every configuration.
    """
    if name not in GRAPH_SUITE:
        raise KeyError(f"unknown graph '{name}'; choose from {sorted(GRAPH_SUITE)}")
    key = (name, seed)
    graph = _SUITE_CACHE.get(key)
    if graph is None:
        spec = GRAPH_SUITE[name]
        graph = generate_power_law_graph(
            spec.n_vertices, spec.avg_degree, seed=seed, skew=spec.skew
        )
        _SUITE_CACHE[key] = graph  # simrace: ignore[RCE005] -- idempotent per-process memo keyed by (name, seed); every process computes the identical graph
    return graph
