"""Shared scaffolding for the graph workloads.

All five graph kernels follow the same shape: a CSR graph in memory, 8-byte
per-vertex property arrays, threads owning contiguous vertex chunks, and an
inner loop that streams edge targets and fires one PEI per edge at a random
vertex property.  GraphWorkloadBase centralizes graph construction, the
address layout, and the Table 3 small/medium/large graph selection.
"""

from typing import Dict, Optional

import numpy as np

from repro.vm.address_space import AddressSpace, Region
from repro.workloads.base import Workload
from repro.workloads.graph.generators import generate_power_law_graph, make_suite_graph
from repro.workloads.graph.graph import CsrGraph

WORD = 8  # all vertex properties and edge entries are 8-byte words


class GraphLayout:
    """Address layout of a CSR graph plus named vertex-property arrays."""

    def __init__(self, space: AddressSpace, graph: CsrGraph, properties):
        self.graph = graph
        self.indptr_region = space.alloc("graph.indptr", (graph.n_vertices + 1) * WORD)
        self.indices_region = space.alloc("graph.indices", max(graph.n_edges, 1) * WORD)
        self.weights_region: Optional[Region] = None
        if graph.weights is not None:
            self.weights_region = space.alloc("graph.weights",
                                              max(graph.n_edges, 1) * WORD)
        self.property_regions: Dict[str, Region] = {
            name: space.alloc(f"prop.{name}", graph.n_vertices * WORD)
            for name in properties
        }

    def indptr_addr(self, v: int) -> int:
        return self.indptr_region.base + v * WORD

    def edge_addr(self, e: int) -> int:
        return self.indices_region.base + e * WORD

    def weight_addr(self, e: int) -> int:
        return self.weights_region.base + e * WORD

    def prop_addr(self, name: str, v: int) -> int:
        return self.property_regions[name].base + v * WORD


class GraphWorkloadBase(Workload):
    """Base class: builds the graph, the layout, and the thread chunking.

    Construct either with ``graph_name`` (one of the nine-graph suite used
    by Table 3 and Figures 2/8) or with explicit ``n_vertices`` and
    ``avg_degree`` for custom/tiny graphs, or with a prebuilt ``graph``.
    """

    #: Property arrays (name list) allocated by prepare(); set by subclasses.
    properties = ()

    def __init__(
        self,
        graph_name: Optional[str] = None,
        n_vertices: Optional[int] = None,
        avg_degree: Optional[float] = None,
        graph: Optional[CsrGraph] = None,
        seed: int = 42,
    ):
        super().__init__(seed=seed)
        given = sum(x is not None for x in (graph_name, n_vertices, graph))
        if given != 1:
            raise ValueError(
                "specify exactly one of graph_name, n_vertices(+avg_degree), graph"
            )
        if n_vertices is not None and avg_degree is None:
            raise ValueError("avg_degree is required with n_vertices")
        self.graph_name = graph_name
        self._n_vertices = n_vertices
        self._avg_degree = avg_degree
        self._prebuilt = graph
        self.graph: Optional[CsrGraph] = None
        self.layout: Optional[GraphLayout] = None

    def build_graph(self) -> CsrGraph:
        if self._prebuilt is not None:
            return self._prebuilt
        if self.graph_name is not None:
            return make_suite_graph(self.graph_name, seed=self.seed)
        return generate_power_law_graph(self._n_vertices, self._avg_degree,
                                        seed=self.seed)

    def transform_graph(self, graph: CsrGraph) -> CsrGraph:
        """Hook for subclasses (WCC symmetrizes here)."""
        return graph

    def prepare(self, space: AddressSpace) -> None:
        self.space = space
        self.graph = self.transform_graph(self.build_graph())
        self.layout = GraphLayout(space, self.graph, self.properties)
        self.init_data()

    def init_data(self) -> None:
        """Initialize property arrays (functional; part of the skipped
        initialization phase, so it emits no operations)."""

    # Convenience for subclasses ----------------------------------------

    def vertex_range(self, thread: int, n_threads: int) -> range:
        n = self.graph.n_vertices
        return range((n * thread) // n_threads, (n * (thread + 1)) // n_threads)

    @staticmethod
    def chunk_of(items: np.ndarray, thread: int, n_threads: int) -> np.ndarray:
        n = len(items)
        return items[(n * thread) // n_threads:(n * (thread + 1)) // n_threads]
