"""Workload registry: Table 3's input sets, scaled to the default machine.

The paper's inputs are scaled down by the same factor as the default
machine's caches (Section 6.2 / DESIGN.md): ``small`` inputs fit in the
scaled last-level cache, ``medium`` inputs are a few multiples of it, and
``large`` inputs exceed it by an order of magnitude — reproducing the three
locality regimes of Figure 6.
"""

from importlib import import_module
from typing import Dict, Tuple

from repro.workloads.base import Workload

#: name -> (module, class).  Implementations import on first use: the
#: concrete workloads pull in numpy for data generation, and an eager
#: import here would drag numpy onto the path of every ``repro`` consumer
#: — including the numpy-free ones (repro.analysis, repro.verify).
_CLASS_PATHS: Dict[str, Tuple[str, str]] = {
    "ATF": ("repro.workloads.graph.atf", "AverageTeenageFollower"),
    "BFS": ("repro.workloads.graph.bfs", "BreadthFirstSearch"),
    "PR": ("repro.workloads.graph.pagerank", "PageRank"),
    "SP": ("repro.workloads.graph.sssp", "SingleSourceShortestPath"),
    "WCC": ("repro.workloads.graph.wcc", "WeaklyConnectedComponents"),
    "HJ": ("repro.workloads.analytics.hash_join", "HashJoin"),
    "HG": ("repro.workloads.analytics.histogram", "Histogram"),
    "RP": ("repro.workloads.analytics.radix_partition", "RadixPartition"),
    "SC": ("repro.workloads.ml.streamcluster", "Streamcluster"),
    "SVM": ("repro.workloads.ml.svm_rfe", "SvmRfe"),
}

_GRAPH_NAMES = ("ATF", "BFS", "PR", "SP", "WCC")

#: Table 3's graph inputs: soc-Slashdot0811 / frwiki-2013 / soc-LiveJournal1.
_GRAPH_INPUTS = {
    "small": "soc-Slashdot0811",
    "medium": "frwiki-2013",
    "large": "soc-LiveJournal1",
}

#: Parameters per workload and size (Table 3, scaled).
INPUT_SIZES: Dict[str, Dict[str, dict]] = {
    **{
        name: {size: {"graph_name": graph} for size, graph in _GRAPH_INPUTS.items()}
        for name in _GRAPH_NAMES
    },
    "HJ": {
        "small": {"build_rows": 4_096, "probe_rows": 16_384},
        "medium": {"build_rows": 65_536, "probe_rows": 16_384},
        "large": {"build_rows": 524_288, "probe_rows": 16_384},
    },
    "HG": {
        "small": {"n_values": 100_000},
        "medium": {"n_values": 1_000_000},
        "large": {"n_values": 10_000_000},
    },
    "RP": {
        "small": {"n_rows": 16_384, "passes": 3},
        "medium": {"n_rows": 262_144, "passes": 3},
        "large": {"n_rows": 2_097_152, "passes": 3},
    },
    "SC": {
        "small": {"n_points": 512, "dims": 32},
        "medium": {"n_points": 8_192, "dims": 64},
        "large": {"n_points": 32_768, "dims": 64},
    },
    "SVM": {
        "small": {"n_instances": 64, "n_features": 256},
        "medium": {"n_instances": 128, "n_features": 2_048},
        "large": {"n_instances": 256, "n_features": 8_192},
    },
}

WORKLOAD_NAMES = tuple(INPUT_SIZES)

#: Resolved class memo, filled lazily by :func:`_workload_class`.
_CLASSES: Dict[str, type] = {}


def _workload_class(name: str) -> type:
    cls = _CLASSES.get(name)
    if cls is None:
        module_name, attr = _CLASS_PATHS[name]
        cls = getattr(import_module(module_name), attr)
        _CLASSES[name] = cls  # simrace: ignore[RCE005] -- idempotent per-process import memo; every process resolves the identical class and the parent never reads it
    return cls


def make_workload(name: str, size: str = "small", seed: int = 42, **overrides) -> Workload:
    """Instantiate one of the ten case-study workloads.

    Args:
        name: workload short name ("ATF", "BFS", "PR", "SP", "WCC", "HJ",
            "HG", "RP", "SC", "SVM").
        size: "small", "medium", or "large" (Table 3 regimes).
        seed: deterministic data-generation seed.
        overrides: parameter overrides merged over the registry defaults.
    """
    if name not in INPUT_SIZES:
        raise KeyError(f"unknown workload '{name}'; choose from {WORKLOAD_NAMES}")
    sizes = INPUT_SIZES[name]
    if size not in sizes:
        raise KeyError(f"unknown size '{size}'; choose from {tuple(sizes)}")
    params = dict(sizes[size])
    params.update(overrides)
    return _workload_class(name)(seed=seed, **params)
