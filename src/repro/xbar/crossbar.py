"""A single-stage crossbar with per-port occupancy.

Each requester (core, PMU, memory controller) owns an injection port; a
transfer of N bytes holds the port for N / bytes_per_cycle cycles and then
pays the crossbar's pipeline latency.  This captures port-level serialization
without flit-level modelling — the on-chip network is never the bottleneck in
the paper's experiments, but its latency sits on every L3 and PMU access.
"""

from repro.sim.resource import BandwidthLink


class Crossbar:
    """Crossbar connecting cores, the L3, the PMU, and the HMC controller."""

    def __init__(self, n_ports: int, bytes_per_cycle: float, latency: float):
        if n_ports <= 0:
            raise ValueError(f"port count must be positive, got {n_ports}")
        self.latency = latency
        self.ports = [
            BandwidthLink(f"xbar.port{i}", bytes_per_cycle) for i in range(n_ports)
        ]

    def __len__(self) -> int:
        return len(self.ports)

    def traverse(self, port: int, arrival: float, nbytes: int) -> float:
        """Send ``nbytes`` from ``port``; return the delivery time."""
        # BandwidthLink.transfer, inlined: every L3 access and PMU visit
        # crosses the crossbar at least twice.
        link = self.ports[port % len(self.ports)]
        occupancy = nbytes / link.bytes_per_cycle
        if arrival > link.clock:
            gap = arrival - link.clock
            link.backlog = link.backlog - gap if link.backlog > gap else 0.0
            link.clock = arrival
        start = arrival + link.backlog
        link.backlog += occupancy
        link.busy_cycles += occupancy
        link.served += 1
        link.bytes_transferred += nbytes
        return start + occupancy + self.latency

    @property
    def bytes_transferred(self) -> int:
        return sum(port.bytes_transferred for port in self.ports)

    def reset(self) -> None:
        for port in self.ports:
            port.reset()
