"""On-chip interconnect (Table 2: crossbar, 2 GHz, 144-bit links)."""

from repro.xbar.crossbar import Crossbar

__all__ = ["Crossbar"]
