"""System configuration (the knobs of Table 2 plus the PEI hardware).

Three presets:

* :func:`paper_config` — the literal Table 2 machine (16 MB L3, 32 GB of
  HMC memory).  Used to assert the configuration against the paper; too
  large to be exercised at full scale by a Python timing model.
* :func:`scaled_config` — the default for experiments: the same organization
  with capacities scaled down 16x (1 MB L3) so that the scaled-down
  workload inputs of the registry reproduce the paper's locality regimes.
* :func:`tiny_config` — a 4-core miniature for unit/integration tests.

Latencies and bandwidths are *not* scaled — only capacities are — because
the paper's effects live in the footprint/capacity ratio, not in absolute
sizes.
"""

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.util.bitops import is_power_of_two


@dataclass(frozen=True)
class SystemConfig:
    """Every hardware parameter of the simulated machine.

    Times are host-core cycles (4 GHz) unless suffixed ``_ns`` or ``_ghz``;
    bandwidths are bytes per host-core cycle.
    """

    # Cores (Table 2: 16 out-of-order cores, 4 GHz, 4-issue)
    n_cores: int = 16
    core_freq_ghz: float = 4.0
    issue_width: int = 4
    core_mlp: int = 16  # outstanding memory ops (L1 MSHRs)

    # Caches (Table 2 organization; capacities scaled in presets)
    block_size: int = 64
    l1_size: int = 16 * 1024
    l1_ways: int = 8
    l1_latency: float = 4.0
    l2_size: int = 64 * 1024
    l2_ways: int = 8
    l2_latency: float = 12.0
    l3_size: int = 1024 * 1024
    l3_ways: int = 16
    l3_latency: float = 30.0
    l3_banks: int = 8
    l3_bank_occupancy: float = 2.0
    cache_to_cache_penalty: float = 20.0
    cache_replacement_policy: str = "lru"  # "lru" | "fifo" | "random"

    # On-chip network (Table 2: crossbar, 2 GHz, 144-bit links)
    xbar_bytes_per_cycle: float = 9.0  # 18 B/2 GHz-cycle = 9 B/host-cycle
    xbar_latency: float = 6.0

    # Main memory (Table 2: 32 GB, 8 HMCs, 80 GB/s full-duplex chain)
    n_hmcs: int = 8
    vaults_per_hmc: int = 16
    banks_per_vault: int = 16  # Table 2: 256 DRAM banks per HMC
    dram_row_bytes: int = 2048
    dram_t_cl_ns: float = 13.75
    dram_t_rcd_ns: float = 13.75
    dram_t_rp_ns: float = 13.75
    dram_burst_ns: float = 4.0
    memory_controller_latency: float = 8.0
    tsv_bytes_per_cycle: float = 4.0  # 64 TSVs x 2 Gb/s = 16 GB/s per vault
    # Table 2: "daisy-chain (80 GB/s full-duplex)" — read as 80 GB/s of
    # aggregate chain bandwidth, i.e. 40 GB/s per direction (10 B per
    # 4 GHz host cycle each way).
    offchip_request_bytes_per_cycle: float = 10.0
    offchip_response_bytes_per_cycle: float = 10.0
    packet_header_bytes: int = 16
    flit_bytes: int = 16
    serdes_latency: float = 16.0
    # Opt-in: model the daisy chain hop-by-hop (cube position matters)
    # instead of as its bottleneck host-side hop.
    model_chain_hops: bool = False
    chain_hop_latency: float = 4.0

    # Virtual memory
    page_size: int = 4096
    physical_frames: int = 1 << 18  # 1 GB of physical memory at 4 KB pages
    tlb_entries: int = 64
    tlb_walk_latency: float = 100.0

    # PEI hardware (Section 6.1)
    pcu_operand_buffer_entries: int = 4
    pcu_issue_width: int = 1
    host_pcu_freq_ghz: float = 4.0
    mem_pcu_freq_ghz: float = 2.0
    pim_directory_entries: int = 2048
    pim_directory_latency: float = 2.0
    pim_directory_handoff_penalty: float = 10.0
    locality_monitor_latency: float = 3.0
    locality_monitor_partial_tag_bits: int = 10
    locality_monitor_ignore_flag: bool = True
    balanced_dispatch_ema_period: float = 40000.0  # 10 us at 4 GHz
    pei_mmio_cost: float = 1.0

    # Ablations (Section 7.6): idealize PMU structures
    ideal_pim_directory: bool = False
    ideal_locality_monitor: bool = False

    # ------------------------------------------------------------------

    def __post_init__(self):
        for name in ("block_size", "l1_size", "l2_size", "l3_size", "page_size"):
            if not is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two")
        if self.cache_replacement_policy not in ("lru", "fifo", "random"):
            raise ValueError(
                f"unknown replacement policy '{self.cache_replacement_policy}'")
        if self.n_cores <= 0:
            raise ValueError("need at least one core")
        if self.l1_size % (self.l1_ways * self.block_size):
            raise ValueError("L1 geometry does not divide evenly")
        if self.l2_size % (self.l2_ways * self.block_size):
            raise ValueError("L2 geometry does not divide evenly")
        if self.l3_size % (self.l3_ways * self.block_size):
            raise ValueError("L3 geometry does not divide evenly")

    # Derived geometry -------------------------------------------------

    @property
    def l1_sets(self) -> int:
        return self.l1_size // (self.l1_ways * self.block_size)

    @property
    def l2_sets(self) -> int:
        return self.l2_size // (self.l2_ways * self.block_size)

    @property
    def l3_sets(self) -> int:
        return self.l3_size // (self.l3_ways * self.block_size)

    @property
    def total_vaults(self) -> int:
        return self.n_hmcs * self.vaults_per_hmc

    @property
    def total_dram_banks(self) -> int:
        return self.total_vaults * self.banks_per_vault

    @property
    def total_operand_buffers(self) -> int:
        """All operand-buffer entries (Section 6.1 footnote: 576 by default
        at paper scale: 16 host PCUs x 4 + 128 memory PCUs x 4)."""
        host = self.n_cores * self.pcu_operand_buffer_entries
        memory = self.total_vaults * self.pcu_operand_buffer_entries
        return host + memory

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Stable hex digest over every field of this configuration.

        Two configs share a fingerprint iff every hardware parameter is
        equal; any field change — including ones added in future versions,
        since the field dict is serialized wholesale — produces a different
        digest.  Used by the benchmark disk cache
        (:mod:`repro.bench.cache`) to key persisted results.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scaled_config(**overrides) -> SystemConfig:
    """Default experiment machine: Table 2 organization, capacities / 16."""
    return SystemConfig(**overrides)


def paper_config(**overrides) -> SystemConfig:
    """The literal Table 2 machine (for configuration checks)."""
    base = dict(
        n_cores=16,
        l1_size=32 * 1024,
        l1_ways=8,
        l2_size=256 * 1024,
        l2_ways=8,
        l3_size=16 * 1024 * 1024,
        l3_ways=16,
        physical_frames=1 << 23,  # 32 GB at 4 KB pages
    )
    base.update(overrides)
    return SystemConfig(**base)


def tiny_config(**overrides) -> SystemConfig:
    """A 4-core miniature machine for fast unit and integration tests."""
    base = dict(
        n_cores=4,
        core_mlp=8,
        l1_size=4 * 1024,
        l1_ways=4,
        l2_size=8 * 1024,
        l2_ways=8,
        l3_size=64 * 1024,
        l3_ways=16,
        l3_banks=4,
        n_hmcs=2,
        vaults_per_hmc=4,
        banks_per_vault=4,
        pim_directory_entries=256,
        physical_frames=1 << 16,
    )
    base.update(overrides)
    return SystemConfig(**base)
