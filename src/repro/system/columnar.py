"""Columnar trace replay: plan-compiled, vectorized where state allows.

Scalar replay (:meth:`System._run_trace`) walks a :class:`CompiledTrace`
op-by-op through Python dispatch, re-deriving per-op facts — TLB outcomes,
physical addresses, PEI operand decodes, per-op compute time deltas — that
are *pure functions of the trace and the machine geometry*.  This module
compiles those facts once into a :class:`ColumnPlan` and replays through
kind-specialized span loops, leaving only genuinely contention-ordered
state (L3/cache hierarchy, locality monitor, links, DRAM banks, PCUs, PIM
directory) to the existing per-op models.

What the plan precomputes, and why each piece is deterministic:

* **Span segmentation** — each thread's op stream is cut into maximal runs
  of uniform kind (numpy ``diff`` over the kind column).  Ordering points
  (PEI spans, ``pfence``, barriers) bound the runs; the engine's horizon
  batching re-cuts spans dynamically at replay time.
* **TLB outcomes and physical addresses** — each thread owns its core's
  fully-associative LRU TLB exclusively, and under warm start the page
  table's frame permutation is fixed by the region layout (frames are
  handed out by a deterministic multiplicative permutation in warm-sweep
  touch order).  The whole per-op (paddr, walk-latency) sequence is
  therefore a plan-time constant; the live TLB's final state and hit/miss
  totals are restored when replay drains.
* **Compute time deltas** — ``insts / issue_width`` per op, vectorized
  (IEEE-754 double division matches Python's int/int true division
  bit-for-bit).  The per-op accumulation order and the per-op horizon
  checks are preserved, so ``core.time`` rounds identically.
* **PEI operand decode** — resolved ``PimOp`` objects, ``wait_output``
  bools and chain ids, unboxed once instead of per replay op.
* **Locality-monitor partial tags** — the XOR-fold is a pure function of
  the block number; the plan folds every block of the trace in one
  vectorized pass and installs the results into the monitor's tag memo.
* **Warm-start template** — on a fresh machine the warm sweep's final
  L3/monitor/page-table state is a pure function of the regions and the
  geometry; it is captured once and applied by copy on later fresh runs
  (LRU replacement only — other policies re-run the sweep).

What stays per-op scalar: every touch of cross-thread shared state.  Loads
and stores still call ``hierarchy.access`` (coherence, bank contention,
monitor mirroring); PEIs still run the full Fig. 4/5 sequence through
:meth:`PeiExecutor._execute_pei` — only their translation is precomputed.

Bit-identity with the scalar and generator paths is the bar
(``tests/system/test_trace_replay.py``); anything the plan cannot prove
deterministic (cold machine reuse, addresses outside the captured regions,
``warm_start=False``, missing numpy) makes :func:`replay` return None and
the caller falls back to scalar replay.

This module is imported lazily by ``System._run_trace`` and tolerates a
missing numpy, so numpy-free consumers (repro.analysis, repro.verify)
never pay for it — enforced by the CI import-hygiene check.
"""

import heapq
from collections import OrderedDict, defaultdict
from typing import Dict, List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    np = None

from repro.cpu.trace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    KIND_FENCE,
    KIND_LOAD,
    KIND_PEI,
    KIND_STORE,
)
from repro.sim.stat_keys import SLOT_CORE_LOADS, SLOT_CORE_STORES
from repro.vm.page_table import PageTable

__all__ = ["ColumnPlan", "plan_cache_counters", "plan_cache_info",
           "replay", "set_plan_cache_limit"]

#: Bounded plan memo keyed by (trace fingerprint, config fingerprint,
#: monitor use).  Plans are immutable after build except for the lazily
#: captured warm template; each process owns its own cache.
_PLAN_CACHE: "OrderedDict[Tuple, Optional[ColumnPlan]]" = OrderedDict()
_PLAN_CACHE_LIMIT = 8

#: Lifetime hit/miss/eviction counters for this process's plan cache.
#: Consumers (the bench frontier, the engine microbenchmark) snapshot
#: around a run and report the delta; the counters themselves only ever
#: grow.  The bound and the counters shape host memory use and harness
#: observability, never simulation results — replay is bit-identical
#: whether a plan came from the cache or a fresh compile
#: (tests/bench/test_plan_cache.py).
_PLAN_STATS = {"hits": 0, "misses": 0, "evictions": 0}


class ColumnPlan:
    """Per-(trace, geometry) replay columns; see the module docstring."""

    __slots__ = (
        "lengths", "span_kinds", "span_ends",
        "p0", "p1", "p2", "p3", "p4",
        "final_tlb", "tlb_hits", "tlb_misses",
        "expected_mapping", "tag_items", "warm_template",
    )

    def __init__(self, lengths, span_kinds, span_ends, p0, p1, p2, p3, p4,
                 final_tlb, tlb_hits, tlb_misses, expected_mapping,
                 tag_items):
        self.lengths = lengths
        #: Per thread: the kind of each uniform-kind span / its end index.
        self.span_kinds = span_kinds
        self.span_ends = span_ends
        #: Per-op operand columns (full length, kind-dependent meaning):
        #: p0 = paddr (mem ops) | time delta (compute) | group (barrier);
        #: p1 = walk latency (mem ops) | insts (compute);
        #: p2 = dep flag (loads) | PimOp (PEIs);
        #: p3 = wait_output (PEIs); p4 = chain id or None (PEIs).
        self.p0 = p0
        self.p1 = p1
        self.p2 = p2
        self.p3 = p3
        self.p4 = p4
        #: Per thread: the TLB's final (vpage, frame) LRU order + totals,
        #: restored after replay so machine state matches scalar replay.
        self.final_tlb = final_tlb
        self.tlb_hits = tlb_hits
        self.tlb_misses = tlb_misses
        #: The deterministic vpage -> frame mapping warm start produces.
        self.expected_mapping = expected_mapping
        #: (block, partial_tag) pairs for the monitor's tag memo (None
        #: when the policy never consults the monitor).
        self.tag_items = tag_items
        #: Captured lazily after the first warm sweep on a fresh machine:
        #: (l3 set copies, l3 eviction count, monitor set copies or None).
        self.warm_template = None


def plan_cache_info() -> Dict[str, int]:
    """Introspection for tests: cached plan count and capacity."""
    return {"size": len(_PLAN_CACHE), "limit": _PLAN_CACHE_LIMIT}


def plan_cache_counters() -> Dict[str, int]:
    """Lifetime plan-cache hits/misses/evictions for this process."""
    return dict(_PLAN_STATS)


def set_plan_cache_limit(limit: int) -> int:
    """Rebound the plan cache (evicting LRU entries past the new bound).

    The bound only trades host memory against plan recompiles; results are
    identical under any bound because a recompiled plan is deterministic.
    """
    global _PLAN_CACHE_LIMIT
    if limit < 1:
        raise ValueError(f"plan cache limit must be >= 1, got {limit}")
    _PLAN_CACHE_LIMIT = limit
    while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.popitem(last=False)
        _PLAN_STATS["evictions"] += 1
    return _PLAN_CACHE_LIMIT


# ----------------------------------------------------------------------
# Plan compilation
# ----------------------------------------------------------------------


def _expected_mapping(trace, config) -> Optional[Dict[int, int]]:
    """The vpage -> frame map the warm sweep deterministically produces.

    Mirrors ``_warm_caches``'s touch order exactly: regions in layout
    order, one translate per page.  Frames come from the page table's
    multiplicative permutation over the fault sequence number, vectorized
    here (uint64 multiply wraps mod 2**64 exactly like Python's masked
    product).  Returns None when the layout breaks an assumption (an
    unaligned region base) — the caller falls back to scalar replay.
    """
    page_size = trace.page_size
    page_bits = page_size.bit_length() - 1
    vpages: List[int] = []
    for _name, base, size in trace.regions:
        if base & (page_size - 1):
            return None
        first = base >> page_bits
        vpages.extend(range(first, first + (size + page_size - 1) // page_size))
    n_frames = config.physical_frames
    if len(vpages) > n_frames:
        # The warm sweep would raise MemoryError; let scalar replay do so.
        return None
    seq = np.arange(len(vpages), dtype=np.uint64)
    frames = (seq * np.uint64(PageTable._MULTIPLIER)) & np.uint64(n_frames - 1)
    return dict(zip(vpages, frames.tolist()))


def _build_plan(trace, config, op_table, machine,
                uses_monitor: bool) -> Optional["ColumnPlan"]:
    mapping = _expected_mapping(trace, config)
    if mapping is None:
        return None
    page_bits = trace.page_size.bit_length() - 1
    page_mask = trace.page_size - 1
    block_bits = machine.hierarchy.block_bits
    issue_width = config.issue_width
    tlb_entries = config.tlb_entries
    walk_latency = config.tlb_walk_latency
    n_threads = trace.n_threads

    lengths = [len(k) for k in trace.kinds]
    span_kinds_all: List[List[int]] = []
    span_ends_all: List[List[int]] = []
    p0_all: List[list] = []
    p1_all: List[list] = []
    p2_all: List[list] = []
    p3_all: List[list] = []
    p4_all: List[list] = []
    final_tlb: List[List[Tuple[int, int]]] = []
    tlb_hits: List[int] = []
    tlb_misses: List[int] = []
    blocks: set = set()

    for tid in range(n_threads):
        kinds = np.frombuffer(trace.kinds[tid], dtype=np.int8)
        a0 = np.frombuffer(trace.a0[tid], dtype=np.int64)
        a1 = np.frombuffer(trace.a1[tid], dtype=np.int64)
        a2 = np.frombuffer(trace.a2[tid], dtype=np.int64)
        a3 = np.frombuffer(trace.a3[tid], dtype=np.int64)
        n = len(kinds)

        # Maximal uniform-kind spans: cut where the kind column changes.
        if n:
            change = np.flatnonzero(kinds[1:] != kinds[:-1]) + 1
            span_kinds = kinds[np.concatenate(([0], change))].tolist()
            span_ends = np.concatenate((change, [n])).tolist()
        else:
            span_kinds, span_ends = [], []

        p0 = a0.tolist()
        p1: list = [0.0] * n
        p2: list = [None] * n
        p3: list = [False] * n
        p4: list = [None] * n

        # Compute spans: per-op time deltas, vectorized.  float64 division
        # of an exact integer matches Python's int/int true division.
        comp_idx = np.flatnonzero(kinds == KIND_COMPUTE)
        if len(comp_idx):
            dts = (a0[comp_idx].astype(np.float64) / issue_width).tolist()
            insts = a0[comp_idx].tolist()
            for pos, dt, n_insts in zip(comp_idx.tolist(), dts, insts):
                p0[pos] = dt
                p1[pos] = n_insts

        # Load dep flags and PEI decode columns.
        load_idx = np.flatnonzero(kinds == KIND_LOAD).tolist()
        for pos, dep in zip(load_idx, (a1[load_idx] != 0).tolist()):
            p2[pos] = dep
        pei_idx = np.flatnonzero(kinds == KIND_PEI).tolist()
        if pei_idx:
            for pos, op_i, wait, chain in zip(
                    pei_idx, a1[pei_idx].tolist(),
                    (a2[pei_idx] != 0).tolist(), a3[pei_idx].tolist()):
                p2[pos] = op_table[op_i]
                p3[pos] = wait
                p4[pos] = chain - 1 if chain else None

        # TLB pass: replay the core's private LRU TLB over this thread's
        # memory ops once.  The page mapping is the deterministic warm map,
        # so the per-op paddr and walk-latency columns are constants.
        mem_mask = ((kinds == KIND_LOAD) | (kinds == KIND_STORE)
                    | (kinds == KIND_PEI))
        mem_idx = np.flatnonzero(mem_mask).tolist()
        vaddrs = a0[mem_idx].tolist() if mem_idx else []
        cache: OrderedDict = OrderedDict()
        cache_get = cache.get
        cache_move = cache.move_to_end
        hits = misses = 0
        for pos, vaddr in zip(mem_idx, vaddrs):
            vpage = vaddr >> page_bits
            frame = cache_get(vpage)
            if frame is not None:
                cache_move(vpage)
                hits += 1
            else:
                misses += 1
                frame = mapping.get(vpage)
                if frame is None:
                    # Address outside the captured regions: first-touch
                    # order would depend on thread interleaving.
                    return None
                cache[vpage] = frame
                if len(cache) > tlb_entries:
                    cache.popitem(last=False)
                p1[pos] = walk_latency
            paddr = (frame << page_bits) | (vaddr & page_mask)
            p0[pos] = paddr
            blocks.add(paddr >> block_bits)

        span_kinds_all.append(span_kinds)
        span_ends_all.append(span_ends)
        p0_all.append(p0)
        p1_all.append(p1)
        p2_all.append(p2)
        p3_all.append(p3)
        p4_all.append(p4)
        final_tlb.append(list(cache.items()))
        tlb_hits.append(hits)
        tlb_misses.append(misses)

    tag_items = None
    if uses_monitor and blocks:
        # Vectorized XOR-fold of every block's partial tag, installed into
        # the monitor's tag memo at attach time.
        mon = machine.monitor
        blk = np.fromiter(blocks, dtype=np.int64, count=len(blocks))
        value = blk >> mon._set_bits
        tags = np.zeros_like(blk)
        tag_mask = np.int64(mon._tag_mask)
        while value.any():
            tags ^= value & tag_mask
            value >>= np.int64(mon.partial_tag_bits)
        tag_items = list(zip(blk.tolist(), tags.tolist()))

    return ColumnPlan(lengths, span_kinds_all, span_ends_all,
                      p0_all, p1_all, p2_all, p3_all, p4_all,
                      final_tlb, tlb_hits, tlb_misses, mapping, tag_items)


def _plan_for(system, trace, op_table) -> Optional[ColumnPlan]:
    uses_monitor = system.policy.uses_monitor
    key = (trace.fingerprint, system.config.fingerprint(), uses_monitor)
    if key in _PLAN_CACHE:
        _PLAN_CACHE.move_to_end(key)
        _PLAN_STATS["hits"] += 1
        return _PLAN_CACHE[key]
    _PLAN_STATS["misses"] += 1
    plan = _build_plan(trace, system.config, op_table, system.machine,
                       uses_monitor)
    _PLAN_CACHE[key] = plan  # None memoized too: don't retry a bad layout
    while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.popitem(last=False)
        _PLAN_STATS["evictions"] += 1
    return plan


# ----------------------------------------------------------------------
# Warm start: template capture and apply
# ----------------------------------------------------------------------


def _warm(system, trace, plan) -> None:
    """Warm caches via the captured template when provable, else sweep.

    The template replays the warm sweep's *final* state (L3 sets, L3
    eviction count, monitor sets, page-table mapping/fault counters) by
    copy.  It is only captured and applied on an untouched machine under
    pure-LRU replacement, where the sweep's effects are a deterministic
    function of (regions, geometry) — anything else runs the normal sweep.
    """
    machine = system.machine
    spans = [(base, base + size) for _name, base, size in trace.regions]
    l3 = machine.hierarchy.l3
    mon = machine.monitor
    uses_monitor = system.policy.uses_monitor
    fresh = (machine.hierarchy._lru
             and not l3.evictions
             and not any(l3.sets)
             and not (uses_monitor and any(mon._sets)))
    template = plan.warm_template
    if fresh and template is not None:
        l3_sets, l3_evictions, mon_sets = template
        for dst, src in zip(l3.sets, l3_sets):
            dst.update(src)
        l3.evictions += l3_evictions
        if mon_sets is not None:
            for dst, src in zip(mon._sets, mon_sets):
                dst.update(src)
        page_table = machine.page_table
        page_table._mapping.update(plan.expected_mapping)
        page_table._next_sequence += len(plan.expected_mapping)
        page_table.page_faults += len(plan.expected_mapping)
        return
    system._warm_caches(spans)
    if fresh and template is None:
        plan.warm_template = (
            [line_set.copy() for line_set in l3.sets],
            l3.evictions,
            ([line_set.copy() for line_set in mon._sets]
             if uses_monitor else None),
        )


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


def replay(system, trace, op_table, n_threads: int, batch_window: float,
           warm_start: bool, effective_cap: Optional[int]):
    """Columnar replay of ``trace``; None when the plan cannot apply.

    The caller (``System._run_trace``) has already validated thread count,
    page size and ops cap.  Preconditions checked here — and the scalar
    fallback they trigger — keep machine state bit-identical to scalar
    replay in every case the plan cannot prove deterministic.
    """
    if np is None or not warm_start:
        return None
    machine = system.machine
    page_table = machine.page_table
    # The plan's TLB/paddr columns assume a cold page table and cold TLBs
    # (a reused System replays through the scalar path instead).
    if page_table._mapping or page_table._next_sequence:
        return None
    cores = machine.cores
    if any(cores[tid].tlb._cache for tid in range(n_threads)):
        return None
    plan = _plan_for(system, trace, op_table)
    if plan is None:
        return None

    _warm(system, trace, plan)
    if plan.tag_items is not None:
        machine.monitor._tags.update(plan.tag_items)

    _replay_loop(system, trace, plan, n_threads, batch_window)

    # Restore the live TLBs to the state scalar replay leaves behind.
    for tid in range(n_threads):
        tlb = cores[tid].tlb
        cache = tlb._cache
        for vpage, frame in plan.final_tlb[tid]:
            cache[vpage] = frame
        tlb.hits += plan.tlb_hits[tid]
        tlb.misses += plan.tlb_misses[tid]

    return system._collect(trace.workload_name, trace.footprint,
                           n_threads, effective_cap)


def _replay_loop(system, trace, plan, n_threads: int,
                 batch_window: float) -> None:
    """The engine loop: scalar ``_run_trace`` with span-specialized bodies.

    Scheduling (laggard-first heap, horizon batching, barrier park/release,
    telemetry sampling points) is replicated exactly; the per-op bodies of
    load/store/compute spans are inlined over the plan columns with the
    core's hot state (time, instruction count, MLP window) held in locals.
    Every ``core.time`` addition happens in the scalar order with the
    scalar values, so timing rounds bit-identically.
    """
    machine = system.machine
    cores = machine.cores
    executor = machine.executor
    groups = trace.barrier_groups
    group_active: Dict[int, int] = defaultdict(int)
    for group in groups:
        group_active[group] += 1
    barrier_arrived: Dict[int, List[int]] = defaultdict(list)
    parked_count = 0
    indices = [0] * n_threads
    span_pos = [0] * n_threads
    lengths = plan.lengths

    heap = [(cores[tid].time, tid) for tid in range(n_threads)]
    heapq.heapify(heap)
    telemetry = system.telemetry

    def release_group(group: int) -> None:
        nonlocal parked_count
        waiting = barrier_arrived[group]
        resume = max(cores[tid].time for tid in waiting)
        for tid in waiting:
            cores[tid].time = resume
            heapq.heappush(heap, (resume, tid))
        parked_count -= len(waiting)
        waiting.clear()

    def finish_thread(tid: int) -> None:
        group = groups[tid]
        group_active[group] -= 1
        waiting = barrier_arrived[group]
        if waiting and len(waiting) == group_active[group]:
            release_group(group)

    heappop, heappush = heapq.heappop, heapq.heappush
    execute_pei = (executor._execute_pei if not executor.obs.enabled
                   else executor.execute_pei)
    fence = executor.fence
    access = machine.hierarchy.access
    slots = machine.stats.slots
    span_kinds_all, span_ends_all = plan.span_kinds, plan.span_ends
    p0_all, p1_all, p2_all = plan.p0, plan.p1, plan.p2
    p3_all, p4_all = plan.p3, plan.p4

    while heap:
        _, tid = heappop(heap)
        core = cores[tid]
        p0, p1, p2 = p0_all[tid], p1_all[tid], p2_all[tid]
        p3, p4 = p3_all[tid], p4_all[tid]
        span_kinds = span_kinds_all[tid]
        span_ends = span_ends_all[tid]
        i = indices[tid]
        s = span_pos[tid]
        end = lengths[tid]
        horizon = heap[0][0] + batch_window if heap else float("inf")
        parked = False
        finished = False
        # Core hot state in locals; flushed at every exit and around the
        # executor/fence calls, which read and write the core directly.
        # The MLP window list is shared by identity and mutated in place.
        ctime = core.time
        instr = core.instructions
        last_load = core.last_load_completion
        window = core._window
        mlp = core.mlp
        cid = core.core_id
        inv_w = 1.0 / core.issue_width
        while True:
            if i >= end:
                finished = True
                break
            while i >= span_ends[s]:
                s += 1
            kind = span_kinds[s]
            stop = span_ends[s]
            if kind == KIND_LOAD:
                while i < stop:
                    t = ctime + (inv_w + p1[i])
                    if p2[i] and last_load > t:
                        t = last_load
                    if len(window) >= mlp:
                        oldest = heappop(window)
                        if oldest > t:
                            t = oldest
                    finish = access(cid, p0[i], False, t).finish
                    heappush(window, finish)
                    last_load = finish
                    instr += 1
                    slots[SLOT_CORE_LOADS] += 1.0
                    ctime = t
                    i += 1
                    if t > horizon:
                        break
            elif kind == KIND_PEI:
                core.time = ctime
                core.instructions = instr
                core.last_load_completion = last_load
                while i < stop:
                    execute_pei(core, p2[i], p0[i], p1[i], p3[i], p4[i])
                    i += 1
                    if core.time > horizon:
                        break
                ctime = core.time
                instr = core.instructions
                last_load = core.last_load_completion
            elif kind == KIND_COMPUTE:
                while i < stop:
                    ctime += p0[i]
                    instr += p1[i]
                    i += 1
                    if ctime > horizon:
                        break
            elif kind == KIND_STORE:
                while i < stop:
                    ctime += inv_w + p1[i]
                    if len(window) >= mlp:
                        oldest = heappop(window)
                        if oldest > ctime:
                            ctime = oldest
                    heappush(window, access(cid, p0[i], True, ctime).finish)
                    instr += 1
                    slots[SLOT_CORE_STORES] += 1.0
                    i += 1
                    if ctime > horizon:
                        break
            elif kind == KIND_FENCE:
                core.time = ctime
                core.instructions = instr
                core.last_load_completion = last_load
                while i < stop:
                    fence(core)
                    i += 1
                    if core.time > horizon:
                        break
                ctime = core.time
                instr = core.instructions
                last_load = core.last_load_completion
            elif kind == KIND_BARRIER:
                group = p0[i]
                i += 1
                # Flush before parking: release_group reads (and on release
                # overwrites) this core's time.
                core.time = ctime
                barrier_arrived[group].append(tid)
                parked_count += 1
                parked = True
                if len(barrier_arrived[group]) == group_active[group]:
                    release_group(group)
                ctime = core.time
                break
            else:
                raise ValueError(f"unknown operation kind {kind}")
            if ctime > horizon:
                break
        indices[tid] = i
        span_pos[tid] = s
        core.time = ctime
        core.instructions = instr
        core.last_load_completion = last_load
        if finished:
            finish_thread(tid)
        elif not parked:
            heappush(heap, (ctime, tid))
        if telemetry is not None and heap:
            telemetry.on_progress(machine, heap[0][0])

    if parked_count:
        raise RuntimeError(
            "barrier deadlock: threads still parked when the run drained"
        )

    for core in cores:
        core.drain()
