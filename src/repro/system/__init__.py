"""System assembly: configuration, construction, and the run engine."""

from repro.system.config import SystemConfig, paper_config, scaled_config, tiny_config
from repro.system.result import RunResult
from repro.system.system import System

__all__ = [
    "RunResult",
    "System",
    "SystemConfig",
    "paper_config",
    "scaled_config",
    "tiny_config",
]
