"""Constructs a complete simulated machine from a SystemConfig."""

from dataclasses import dataclass
from typing import List

from repro.cache.hierarchy import CacheHierarchy
from repro.core.dispatch import DispatchPolicy
from repro.core.executor import PeiExecutor
from repro.core.locality_monitor import LocalityMonitor
from repro.core.pcu import Pcu
from repro.core.pim_directory import PimDirectory
from repro.core.pmu import Pmu
from repro.cpu.core import CoreModel
from repro.mem.address_map import AddressMap
from repro.mem.dram import DramTimings
from repro.mem.hmc import HmcSystem
from repro.mem.link import OffChipChannel
from repro.sim.clock import ClockDomain
from repro.sim.stats import Stats
from repro.system.config import SystemConfig
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb
from repro.xbar.crossbar import Crossbar


@dataclass
class Machine:
    """All constructed hardware components of one system instance."""

    config: SystemConfig
    policy: DispatchPolicy
    stats: Stats
    crossbar: Crossbar
    hmc: HmcSystem
    hierarchy: CacheHierarchy
    page_table: PageTable
    tlbs: List[Tlb]
    cores: List[CoreModel]
    host_pcus: List[Pcu]
    directory: PimDirectory
    monitor: LocalityMonitor
    pmu: Pmu
    executor: PeiExecutor


def build_machine(config: SystemConfig, policy: DispatchPolicy) -> Machine:
    """Wire every component of the architecture of Fig. 3."""
    stats = Stats()

    # On-chip network: one injection port per core, plus one for the PMU
    # and one for the HMC controller.
    pmu_port = config.n_cores
    crossbar = Crossbar(
        n_ports=config.n_cores + 2,
        bytes_per_cycle=config.xbar_bytes_per_cycle,
        latency=config.xbar_latency,
    )

    # Main memory.
    address_map = AddressMap(
        block_size=config.block_size,
        n_hmcs=config.n_hmcs,
        vaults_per_hmc=config.vaults_per_hmc,
        banks_per_vault=config.banks_per_vault,
        row_bytes=config.dram_row_bytes,
    )
    timings = DramTimings.from_config(config)
    if config.model_chain_hops:
        from repro.mem.chain import DaisyChainChannel

        channel = DaisyChainChannel(
            n_hops=config.n_hmcs,
            request_bytes_per_cycle=config.offchip_request_bytes_per_cycle,
            response_bytes_per_cycle=config.offchip_response_bytes_per_cycle,
            header_bytes=config.packet_header_bytes,
            flit_bytes=config.flit_bytes,
            serdes_latency=config.serdes_latency,
            ema_period=config.balanced_dispatch_ema_period,
            hop_latency=config.chain_hop_latency,
        )
    else:
        channel = OffChipChannel(
            request_bytes_per_cycle=config.offchip_request_bytes_per_cycle,
            response_bytes_per_cycle=config.offchip_response_bytes_per_cycle,
            header_bytes=config.packet_header_bytes,
            flit_bytes=config.flit_bytes,
            serdes_latency=config.serdes_latency,
            ema_period=config.balanced_dispatch_ema_period,
        )
    hmc = HmcSystem(
        address_map=address_map,
        timings=timings,
        channel=channel,
        tsv_bytes_per_cycle=config.tsv_bytes_per_cycle,
        stats=stats,
        controller_latency=config.memory_controller_latency,
    )

    # Cache hierarchy.
    hierarchy = CacheHierarchy(
        n_cores=config.n_cores,
        block_size=config.block_size,
        l1_sets=config.l1_sets,
        l1_ways=config.l1_ways,
        l2_sets=config.l2_sets,
        l2_ways=config.l2_ways,
        l3_sets=config.l3_sets,
        l3_ways=config.l3_ways,
        l1_latency=config.l1_latency,
        l2_latency=config.l2_latency,
        l3_latency=config.l3_latency,
        l3_banks=config.l3_banks,
        l3_bank_occupancy=config.l3_bank_occupancy,
        crossbar=crossbar,
        hmc=hmc,
        stats=stats,
        cache_to_cache_penalty=config.cache_to_cache_penalty,
        replacement_policy=config.cache_replacement_policy,
    )

    # Virtual memory.
    page_table = PageTable(page_size=config.page_size, n_frames=config.physical_frames)
    tlbs = [
        Tlb(page_table, entries=config.tlb_entries, walk_latency=config.tlb_walk_latency)
        for _ in range(config.n_cores)
    ]

    # Cores.
    cores = [
        CoreModel(
            core_id=i,
            issue_width=config.issue_width,
            mlp=config.core_mlp,
            tlb=tlbs[i],
            hierarchy=hierarchy,
            stats=stats,
        )
        for i in range(config.n_cores)
    ]

    # PEI hardware: host-side PCUs (one per core) ...
    host_clock = ClockDomain(config.host_pcu_freq_ghz, config.core_freq_ghz)
    host_pcus = [
        Pcu(
            f"pcu.host{i}",
            host_clock,
            operand_buffer_entries=config.pcu_operand_buffer_entries,
            issue_width=config.pcu_issue_width,
        )
        for i in range(config.n_cores)
    ]
    # ... and memory-side PCUs (one per vault), attached to their vaults.
    mem_clock = ClockDomain(config.mem_pcu_freq_ghz, config.core_freq_ghz)
    for vault in hmc.vaults:
        vault.pcu = Pcu(
            f"pcu.vault{vault.index}",
            mem_clock,
            operand_buffer_entries=config.pcu_operand_buffer_entries,
            issue_width=config.pcu_issue_width,
        )

    # PMU: PIM directory + locality monitor.
    ideal_directory = config.ideal_pim_directory or policy is DispatchPolicy.IDEAL_HOST
    directory = PimDirectory(
        entries=config.pim_directory_entries,
        latency=config.pim_directory_latency,
        stats=stats,
        ideal=ideal_directory,
        handoff_penalty=config.pim_directory_handoff_penalty,
    )
    monitor = LocalityMonitor(
        n_sets=config.l3_sets,
        n_ways=config.l3_ways,
        partial_tag_bits=48 if config.ideal_locality_monitor
        else config.locality_monitor_partial_tag_bits,
        latency=0.0 if config.ideal_locality_monitor
        else config.locality_monitor_latency,
        use_ignore_flag=config.locality_monitor_ignore_flag,
        stats=stats,
    )
    pmu = Pmu(
        directory=directory,
        monitor=monitor,
        hierarchy=hierarchy,
        channel=channel,
        crossbar=crossbar,
        pmu_port=pmu_port,
        policy=policy,
        stats=stats,
    )
    if policy.uses_monitor:
        hierarchy.l3_observer = monitor.observe_llc_access

    executor = PeiExecutor(
        host_pcus=host_pcus,
        hmc=hmc,
        pmu=pmu,
        hierarchy=hierarchy,
        stats=stats,
        mmio_cost=config.pei_mmio_cost,
    )

    return Machine(
        config=config,
        policy=policy,
        stats=stats,
        crossbar=crossbar,
        hmc=hmc,
        hierarchy=hierarchy,
        page_table=page_table,
        tlbs=tlbs,
        cores=cores,
        host_pcus=host_pcus,
        directory=directory,
        monitor=monitor,
        pmu=pmu,
        executor=executor,
    )
