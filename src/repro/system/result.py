"""Results of one simulated run."""

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.energy.model import EnergyBreakdown

#: Sentinel for metadata entries with no JSON representation.
_DROP = object()


def _jsonify_metadata(value):
    """A JSON-safe copy of ``value``, or ``_DROP`` if not representable.

    Scalars pass through; lists/tuples and string-keyed dicts are preserved
    recursively as long as every leaf is a scalar (a workload's per-thread
    op counts, a config sweep's knob dict).  Anything else — objects, numpy
    arrays, non-string keys — is dropped rather than serialized lossily.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        items = [_jsonify_metadata(v) for v in value]
        if any(item is _DROP for item in items):
            return _DROP
        return items
    if isinstance(value, dict):
        out = {}
        for key, entry in value.items():
            if not isinstance(key, str):
                return _DROP
            safe = _jsonify_metadata(entry)
            if safe is _DROP:
                return _DROP
            out[key] = safe
        return out
    return _DROP


@dataclass
class RunResult:
    """Metrics the experiments consume, extracted after a run."""

    workload: str
    policy: str
    cycles: float
    instructions: int
    per_core_instructions: List[int]
    stats: Dict[str, float]
    energy: EnergyBreakdown
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics used by the figures
    # ------------------------------------------------------------------

    @property
    def ipc_sum(self) -> float:
        """Sum of per-core IPCs (the Fig. 9 throughput metric)."""
        if self.cycles <= 0:
            return 0.0
        return sum(insts / self.cycles for insts in self.per_core_instructions)

    @property
    def offchip_bytes(self) -> float:
        """Total off-chip transfer (the Fig. 7 metric)."""
        return self.stats.get("offchip.request_bytes", 0.0) + self.stats.get(
            "offchip.response_bytes", 0.0
        )

    @property
    def dram_accesses(self) -> float:
        return (
            self.stats.get("dram.reads", 0.0)
            + self.stats.get("dram.writes", 0.0)
            + self.stats.get("dram.pim_reads", 0.0)
            + self.stats.get("dram.pim_writes", 0.0)
        )

    @property
    def peis_executed(self) -> float:
        return self.stats.get("pei.host_executed", 0.0) + self.stats.get(
            "pei.mem_executed", 0.0
        )

    @property
    def pim_fraction(self) -> float:
        """Fraction of PEIs executed on memory-side PCUs (Fig. 8's 'PIM %')."""
        total = self.peis_executed
        if total == 0:
            return 0.0
        return self.stats.get("pei.mem_executed", 0.0) / total

    def speedup_over(self, baseline: "RunResult") -> float:
        """Performance of this run relative to ``baseline`` (higher=faster)."""
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    # ------------------------------------------------------------------
    # Serialization (experiment archiving)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """A JSON-safe dictionary of everything in this result.

        Metadata entries keep JSON-representable structure (scalars plus
        nested lists/dicts of scalars); entries with no JSON form are
        dropped rather than serialized lossily.  Keys starting with ``_``
        are harness-transient annotations (e.g. the plan-cache delta a
        replay observed) that depend on scheduling history, not on the
        simulated run — they are excluded so serialized results stay
        bit-identical across serial/parallel and generator/replay paths.
        """
        metadata = {}
        for key, value in self.metadata.items():
            if key.startswith("_"):
                continue
            safe = _jsonify_metadata(value)
            if safe is not _DROP:
                metadata[key] = safe
        return {
            "workload": self.workload,
            "policy": self.policy,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "per_core_instructions": list(self.per_core_instructions),
            "stats": dict(self.stats),
            "energy": self.energy.to_dict(),
            "metadata": metadata,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunResult":
        """Rebuild a result saved with :meth:`to_dict`."""
        energy_fields = dict(payload["energy"])
        energy_fields.pop("total_pj", None)
        return cls(
            workload=payload["workload"],
            policy=payload["policy"],
            cycles=payload["cycles"],
            instructions=payload["instructions"],
            per_core_instructions=list(payload["per_core_instructions"]),
            stats=dict(payload["stats"]),
            energy=EnergyBreakdown(**energy_fields),
            metadata=dict(payload.get("metadata", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
