"""The top-level simulated system and its run engine.

The engine interleaves the workload's per-thread operation generators in
approximate global-time order: a heap keyed by core time always advances the
laggard thread, and each popped thread processes a small batch of operations
before re-entering the heap.  Shared-resource contention (links, DRAM banks,
L3 banks, PCU logic) is handled by the resources themselves, so the engine
only has to keep threads roughly synchronized.
"""

import heapq
from collections import defaultdict
from typing import Dict, List, Optional

from repro.core.dispatch import DispatchPolicy
from repro.cpu.trace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    KIND_FENCE,
    KIND_LOAD,
    KIND_PEI,
    KIND_STORE,
)
from repro.energy.model import EnergyModel
from repro.energy.params import EnergyParams
from repro.obs.sampler import live_gauges
from repro.obs.telemetry import Telemetry
from repro.system.builder import build_machine
from repro.system.config import SystemConfig, scaled_config
from repro.system.result import RunResult
from repro.vm.address_space import AddressSpace
from repro.workloads.base import Workload


class System:
    """A complete machine instance ready to run one workload.

    Machine state (caches, monitor, link counters) persists across ``run``
    calls; experiments create a fresh System per measured run so every
    configuration starts cold.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        policy: DispatchPolicy = DispatchPolicy.LOCALITY_AWARE,
        energy_params: Optional[EnergyParams] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config if config is not None else scaled_config()
        self.policy = policy
        self.machine = build_machine(self.config, policy)
        self.energy_model = EnergyModel(energy_params)
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self.machine)

    # Convenience accessors --------------------------------------------

    @property
    def stats(self):
        return self.machine.stats

    @property
    def cores(self):
        return self.machine.cores

    @property
    def hierarchy(self):
        return self.machine.hierarchy

    @property
    def pmu(self):
        return self.machine.pmu

    @property
    def executor(self):
        return self.machine.executor

    @property
    def hmc(self):
        return self.machine.hmc

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        max_ops_per_thread: Optional[int] = None,
        n_threads: Optional[int] = None,
        batch_window: float = 256.0,
        warm_start: bool = True,
    ) -> RunResult:
        """Simulate ``workload``; returns the collected metrics.

        ``max_ops_per_thread`` caps each thread's operation count — the
        analogue of the paper's fixed two-billion-instruction simulation
        windows.  The cap cuts identical work in every configuration because
        operation streams never depend on the execution mode.

        ``warm_start`` emulates the paper's methodology of simulating after
        the initialization phase: the initialization sweep that wrote the
        data leaves the last-level cache and the locality monitor populated
        with the most recently initialized blocks.
        """
        machine = self.machine
        space = AddressSpace(page_size=self.config.page_size)
        workload.prepare(space)
        if warm_start:
            self._warm_caches(space)
        if n_threads is None:
            n_threads = self.config.n_cores
        if n_threads > self.config.n_cores:
            raise ValueError(
                f"{n_threads} threads exceed {self.config.n_cores} cores"
            )
        generators = workload.make_threads(n_threads)
        if len(generators) != n_threads:
            raise RuntimeError(
                f"workload produced {len(generators)} threads, expected {n_threads}"
            )
        groups = workload.barrier_groups(n_threads)

        cores = machine.cores
        executor = machine.executor
        ops_done = [0] * n_threads
        group_active: Dict[int, int] = defaultdict(int)
        for group in groups:
            group_active[group] += 1
        barrier_arrived: Dict[int, List[int]] = defaultdict(list)
        parked_count = 0

        heap = [(cores[tid].time, tid) for tid in range(n_threads)]
        heapq.heapify(heap)
        telemetry = self.telemetry

        def release_group(group: int) -> None:
            nonlocal parked_count
            waiting = barrier_arrived[group]
            resume = max(cores[tid].time for tid in waiting)
            for tid in waiting:
                cores[tid].time = resume
                heapq.heappush(heap, (resume, tid))
            parked_count -= len(waiting)
            barrier_arrived[group] = []

        def finish_thread(tid: int) -> None:
            group = groups[tid]
            group_active[group] -= 1
            waiting = barrier_arrived[group]
            if waiting and len(waiting) == group_active[group]:
                release_group(group)

        while heap:
            _, tid = heapq.heappop(heap)
            gen = generators[tid]
            core = cores[tid]
            horizon = heap[0][0] + batch_window if heap else float("inf")
            parked = False
            finished = False
            while True:
                if max_ops_per_thread is not None and ops_done[tid] >= max_ops_per_thread:
                    finished = True
                    break
                try:
                    op = next(gen)
                except StopIteration:
                    finished = True
                    break
                ops_done[tid] += 1
                kind = op.kind
                if kind == KIND_LOAD:
                    core.do_load(op.addr, op.dep)
                elif kind == KIND_PEI:
                    executor.execute(core, op.op, op.addr, op.wait_output, op.chain)
                elif kind == KIND_COMPUTE:
                    core.do_compute(op.insts)
                elif kind == KIND_STORE:
                    core.do_store(op.addr)
                elif kind == KIND_FENCE:
                    executor.fence(core)
                elif kind == KIND_BARRIER:
                    group = op.group
                    barrier_arrived[group].append(tid)
                    parked_count += 1
                    parked = True
                    if len(barrier_arrived[group]) == group_active[group]:
                        release_group(group)
                    break
                else:
                    raise ValueError(f"unknown operation kind {kind}")
                if core.time > horizon:
                    break
            if finished:
                finish_thread(tid)
            elif not parked:
                heapq.heappush(heap, (core.time, tid))
            if telemetry is not None and heap:
                # The heap front is the laggard thread: once it passes an
                # interval boundary, every thread has simulated past it and
                # the cumulative counters are a faithful snapshot there.
                telemetry.on_progress(machine, heap[0][0])

        if parked_count:
            raise RuntimeError(
                "barrier deadlock: threads still parked when the run drained"
            )

        for core in cores:
            core.drain()
        return self._collect(workload, n_threads, max_ops_per_thread)

    # ------------------------------------------------------------------

    def _warm_caches(self, space: AddressSpace) -> None:
        """Touch every allocated block in initialization order.

        Inserts each block (clean) into the L3 and, when the policy uses the
        locality monitor, mirrors the access there — the state a real run
        would have right after its (skipped) initialization phase.  No
        statistics or timing are charged: the shared Stats object is
        suspended for the duration, so e.g. monitor evictions during warming
        (which a large footprint produces by the hundred thousand) never
        pollute the measured run.
        """
        machine = self.machine
        hierarchy = machine.hierarchy
        page_table = machine.page_table
        block_size = self.config.block_size
        observe = (machine.monitor.observe_llc_access
                   if self.policy.uses_monitor else None)
        with machine.stats.suspended():
            for region in space.regions.values():
                for vaddr in range(region.base, region.end, block_size):
                    block = page_table.translate(vaddr) >> hierarchy.block_bits
                    hierarchy.l3.insert(block, dirty=False)
                    if observe is not None:
                        observe(block)

    # ------------------------------------------------------------------

    def _collect(
        self, workload: Workload, n_threads: int, max_ops_per_thread: Optional[int]
    ) -> RunResult:
        machine = self.machine
        stats = machine.stats
        cycles = max(core.time for core in machine.cores)
        # Publish the live gauges through the same helper the interval
        # sampler uses, so a final telemetry sample matches RunResult.stats
        # exactly.
        for name, value in live_gauges(machine, cycles).items():
            stats.set(name, value)
        if self.telemetry is not None:
            self.telemetry.finalize(machine, cycles)
        per_core = [core.instructions for core in machine.cores]
        energy = self.energy_model.compute(stats)
        return RunResult(
            workload=workload.name,
            policy=self.policy.value,
            cycles=cycles,
            instructions=sum(per_core),
            per_core_instructions=per_core,
            stats=stats.to_dict(),
            energy=energy,
            metadata={
                "n_threads": n_threads,
                "max_ops_per_thread": max_ops_per_thread,
                "footprint_bytes": workload.footprint,
                "config_l3_size": self.config.l3_size,
            },
        )
