"""The top-level simulated system and its run engine.

The engine interleaves the workload's per-thread operation streams in
approximate global-time order: a heap keyed by core time always advances the
laggard thread, and each popped thread processes a small batch of operations
before re-entering the heap.  Shared-resource contention (links, DRAM banks,
L3 banks, PCU logic) is handled by the resources themselves, so the engine
only has to keep threads roughly synchronized.

Two stream sources drive the same engine semantics:

* **generators** — the workload's functional algorithm runs as the stream
  is consumed (the original mode); and
* a **CompiledTrace** — the streams were captured once by
  :func:`repro.cpu.trace.capture_trace` and replay here through an
  index-based inner loop over compact arrays: no generator resumption, no
  per-op object construction, locals-bound dispatch.  Replayed runs are
  bit-identical to generator-driven runs because operation streams never
  depend on the execution mode.
"""

import heapq
from collections import defaultdict
from typing import Dict, List, Optional, Union

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import PIM_OPS
from repro.cpu.trace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    KIND_FENCE,
    KIND_LOAD,
    KIND_PEI,
    KIND_STORE,
    CompiledTrace,
    TraceError,
)
from repro.energy.model import EnergyModel
from repro.energy.params import EnergyParams
from repro.obs.sampler import live_gauges
from repro.obs.telemetry import Telemetry
from repro.sim.stat_keys import SLOT_LOCALITY_MONITOR_EVICTIONS
from repro.system.builder import build_machine
from repro.system.config import SystemConfig, scaled_config
from repro.system.result import RunResult
from repro.vm.address_space import AddressSpace
from repro.workloads.base import Workload


class System:
    """A complete machine instance ready to run one workload.

    Machine state (caches, monitor, link counters) persists across ``run``
    calls; experiments create a fresh System per measured run so every
    configuration starts cold.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        policy: DispatchPolicy = DispatchPolicy.LOCALITY_AWARE,
        energy_params: Optional[EnergyParams] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config if config is not None else scaled_config()
        self.policy = policy
        self.machine = build_machine(self.config, policy)
        self.energy_model = EnergyModel(energy_params)
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self.machine)

    # Convenience accessors --------------------------------------------

    @property
    def stats(self):
        return self.machine.stats

    @property
    def cores(self):
        return self.machine.cores

    @property
    def hierarchy(self):
        return self.machine.hierarchy

    @property
    def pmu(self):
        return self.machine.pmu

    @property
    def executor(self):
        return self.machine.executor

    @property
    def hmc(self):
        return self.machine.hmc

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Union[Workload, CompiledTrace],
        max_ops_per_thread: Optional[int] = None,
        n_threads: Optional[int] = None,
        batch_window: float = 256.0,
        warm_start: bool = True,
        engine: str = "auto",
    ) -> RunResult:
        """Simulate ``workload``; returns the collected metrics.

        ``workload`` may be a live :class:`Workload` (its generators drive
        the engine and the functional algorithm executes as a side effect)
        or a :class:`CompiledTrace` captured earlier, which replays through
        the array-based fast path with identical results.

        ``max_ops_per_thread`` caps each thread's operation count — the
        analogue of the paper's fixed two-billion-instruction simulation
        windows.  The cap cuts identical work in every configuration because
        operation streams never depend on the execution mode.

        ``warm_start`` emulates the paper's methodology of simulating after
        the initialization phase: the initialization sweep that wrote the
        data leaves the last-level cache and the locality monitor populated
        with the most recently initialized blocks.

        ``engine`` selects the trace-replay engine: ``"auto"`` tries the
        columnar plan-compiled engine (:mod:`repro.system.columnar`) and
        falls back to the scalar loop whenever the plan cannot prove
        bit-identity; ``"scalar"`` forces the scalar loop; ``"columnar"``
        forces the columnar engine and raises :class:`TraceError` when it
        is unavailable.  Generator-driven runs always use the generator
        engine; ``engine`` only shapes how a :class:`CompiledTrace`
        replays, never the results.
        """
        if engine not in ("auto", "scalar", "columnar"):
            raise ValueError(
                f"unknown replay engine {engine!r}; "
                f"choose 'auto', 'scalar' or 'columnar'")
        if isinstance(workload, CompiledTrace):
            return self._run_trace(workload, max_ops_per_thread, n_threads,
                                   batch_window, warm_start, engine)
        machine = self.machine
        space = AddressSpace(page_size=self.config.page_size)
        workload.prepare(space)
        if warm_start:
            spans = [(region.base, region.end)
                     for region in space.regions.values()]
            self._warm_caches(spans)
        if n_threads is None:
            n_threads = self.config.n_cores
        if n_threads > self.config.n_cores:
            raise ValueError(
                f"{n_threads} threads exceed {self.config.n_cores} cores"
            )
        generators = workload.make_threads(n_threads)
        if len(generators) != n_threads:
            raise RuntimeError(
                f"workload produced {len(generators)} threads, expected {n_threads}"
            )
        groups = workload.barrier_groups(n_threads)

        cores = machine.cores
        executor = machine.executor
        ops_done = [0] * n_threads
        group_active: Dict[int, int] = defaultdict(int)
        for group in groups:
            group_active[group] += 1
        barrier_arrived: Dict[int, List[int]] = defaultdict(list)
        parked_count = 0

        heap = [(cores[tid].time, tid) for tid in range(n_threads)]
        heapq.heapify(heap)
        telemetry = self.telemetry

        def release_group(group: int) -> None:
            nonlocal parked_count
            waiting = barrier_arrived[group]
            resume = max(cores[tid].time for tid in waiting)
            for tid in waiting:
                cores[tid].time = resume
                heapq.heappush(heap, (resume, tid))
            parked_count -= len(waiting)
            waiting.clear()

        def finish_thread(tid: int) -> None:
            group = groups[tid]
            group_active[group] -= 1
            waiting = barrier_arrived[group]
            if waiting and len(waiting) == group_active[group]:
                release_group(group)

        heappop, heappush = heapq.heappop, heapq.heappush
        # With no telemetry attached, the executor's obs-guard wrapper is a
        # dead frame on every PEI — bind past it.
        execute = (executor._execute if not executor.obs.enabled
                   else executor.execute)
        fence = executor.fence
        cap = max_ops_per_thread
        while heap:
            _, tid = heappop(heap)
            gen = generators[tid]
            gen_next = gen.__next__
            core = cores[tid]
            do_load, do_store = core.do_load, core.do_store
            do_compute = core.do_compute
            done = ops_done[tid]
            horizon = heap[0][0] + batch_window if heap else float("inf")
            parked = False
            finished = False
            while True:
                if cap is not None and done >= cap:
                    finished = True
                    break
                try:
                    op = gen_next()
                except StopIteration:
                    finished = True
                    break
                done += 1
                kind = op.kind
                if kind == KIND_LOAD:
                    do_load(op.addr, op.dep)
                elif kind == KIND_PEI:
                    execute(core, op.op, op.addr, op.wait_output, op.chain)
                elif kind == KIND_COMPUTE:
                    do_compute(op.insts)
                elif kind == KIND_STORE:
                    do_store(op.addr)
                elif kind == KIND_FENCE:
                    fence(core)
                elif kind == KIND_BARRIER:
                    group = op.group
                    barrier_arrived[group].append(tid)
                    parked_count += 1
                    parked = True
                    if len(barrier_arrived[group]) == group_active[group]:
                        release_group(group)
                    break
                else:
                    raise ValueError(f"unknown operation kind {kind}")
                if core.time > horizon:
                    break
            ops_done[tid] = done
            if finished:
                finish_thread(tid)
            elif not parked:
                heappush(heap, (core.time, tid))
            if telemetry is not None and heap:
                # The heap front is the laggard thread: once it passes an
                # interval boundary, every thread has simulated past it and
                # the cumulative counters are a faithful snapshot there.
                telemetry.on_progress(machine, heap[0][0])

        if parked_count:
            raise RuntimeError(
                "barrier deadlock: threads still parked when the run drained"
            )

        for core in cores:
            core.drain()
        return self._collect(workload.name, workload.footprint,
                             n_threads, max_ops_per_thread)

    # ------------------------------------------------------------------

    def _run_trace(
        self,
        trace: CompiledTrace,
        max_ops_per_thread: Optional[int],
        n_threads: Optional[int],
        batch_window: float,
        warm_start: bool,
        engine: str = "auto",
    ) -> RunResult:
        """Replay a compiled trace through the array-based fast path.

        The trace pins the stream-shaping inputs (thread count, ops cap,
        page size); mismatching replay arguments are rejected rather than
        silently producing a run that a generator-driven System would never
        have produced.
        """
        machine = self.machine
        config = self.config
        if trace.page_size != config.page_size:
            raise TraceError(
                f"trace regions were laid out with page size "
                f"{trace.page_size}, config uses {config.page_size}")
        if n_threads is None:
            n_threads = trace.n_threads
        if n_threads != trace.n_threads:
            raise TraceError(
                f"trace was captured with {trace.n_threads} threads, "
                f"cannot replay with {n_threads}")
        if n_threads > config.n_cores:
            raise ValueError(
                f"{n_threads} threads exceed {config.n_cores} cores"
            )
        if (max_ops_per_thread is not None
                and max_ops_per_thread != trace.max_ops_per_thread):
            raise TraceError(
                f"trace was captured under ops cap "
                f"{trace.max_ops_per_thread}, cannot replay under "
                f"{max_ops_per_thread}")
        try:
            op_table = [PIM_OPS[m] for m in trace.op_mnemonics]
        except KeyError as exc:
            raise TraceError(
                f"trace references unknown PIM op {exc.args[0]!r}") from exc
        # The cap that actually shaped the stream: the trace was cut at
        # capture time, so a None argument inherits the captured cap.  Both
        # engines and the generator path record this effective value in the
        # RunResult metadata (a generator run producing the same stream must
        # have been called with exactly this cap).
        effective_cap = (max_ops_per_thread if max_ops_per_thread is not None
                         else trace.max_ops_per_thread)
        if engine != "scalar":
            # Deferred import: repro.system.columnar needs numpy, and the
            # numpy-free consumers (repro.analysis, repro.verify) import
            # System — the columnar engine must stay off their import path.
            from repro.system import columnar
            plan_before = columnar.plan_cache_counters()
            result = columnar.replay(self, trace, op_table, n_threads,
                                     batch_window, warm_start, effective_cap)
            if result is not None:
                # Transient (underscore-prefixed, dropped by to_dict):
                # whether this run's ColumnPlan was cached depends on what
                # the process replayed before, so the delta is scheduling
                # observability, never part of the result proper.
                plan_after = columnar.plan_cache_counters()
                result.metadata["_plan_cache"] = {
                    key: plan_after[key] - plan_before[key]
                    for key in plan_after}
                return result
            if engine == "columnar":
                raise TraceError(
                    "columnar replay unavailable for this trace/machine "
                    "state (requires numpy, warm_start=True, a cold page "
                    "table and TLBs, and page-aligned regions covering "
                    "every traced address)")
        if warm_start:
            self._warm_caches(
                [(base, base + size) for _, base, size in trace.regions])
        groups = trace.barrier_groups

        cores = machine.cores
        executor = machine.executor
        # Unbox the compact arrays once: list indexing hands back existing
        # int objects, where array('q') indexing would box a fresh int for
        # every operand read in the loop below.
        kinds_by_tid = [k.tolist() for k in trace.kinds]
        a0_by_tid = [a.tolist() for a in trace.a0]
        a1_by_tid = [a.tolist() for a in trace.a1]
        a2_by_tid = [a.tolist() for a in trace.a2]
        a3_by_tid = [a.tolist() for a in trace.a3]
        lengths = [len(k) for k in kinds_by_tid]
        indices = [0] * n_threads
        group_active: Dict[int, int] = defaultdict(int)
        for group in groups:
            group_active[group] += 1
        barrier_arrived: Dict[int, List[int]] = defaultdict(list)
        parked_count = 0

        heap = [(cores[tid].time, tid) for tid in range(n_threads)]
        heapq.heapify(heap)
        telemetry = self.telemetry

        def release_group(group: int) -> None:
            nonlocal parked_count
            waiting = barrier_arrived[group]
            resume = max(cores[tid].time for tid in waiting)
            for tid in waiting:
                cores[tid].time = resume
                heapq.heappush(heap, (resume, tid))
            parked_count -= len(waiting)
            waiting.clear()

        def finish_thread(tid: int) -> None:
            group = groups[tid]
            group_active[group] -= 1
            waiting = barrier_arrived[group]
            if waiting and len(waiting) == group_active[group]:
                release_group(group)

        heappop, heappush = heapq.heappop, heapq.heappush
        execute = (executor._execute if not executor.obs.enabled
                   else executor.execute)
        fence = executor.fence
        while heap:
            _, tid = heappop(heap)
            core = cores[tid]
            do_load, do_store = core.do_load, core.do_store
            do_compute = core.do_compute
            kinds = kinds_by_tid[tid]
            a0, a1 = a0_by_tid[tid], a1_by_tid[tid]
            a2, a3 = a2_by_tid[tid], a3_by_tid[tid]
            i = indices[tid]
            end = lengths[tid]
            horizon = heap[0][0] + batch_window if heap else float("inf")
            parked = False
            finished = False
            while True:
                # The end-of-array check sits at the loop top, mirroring the
                # generator loop's cap check / StopIteration: a thread whose
                # batch broke on the horizon right at its last op re-enters
                # the heap and finishes on its *next* pop, so barrier-group
                # bookkeeping happens in the same order in both modes.
                if i >= end:
                    finished = True
                    break
                kind = kinds[i]
                if kind == KIND_LOAD:
                    do_load(a0[i], bool(a1[i]))
                elif kind == KIND_PEI:
                    chain = a3[i]
                    execute(core, op_table[a1[i]], a0[i], bool(a2[i]),
                            chain - 1 if chain else None)
                elif kind == KIND_COMPUTE:
                    do_compute(a0[i])
                elif kind == KIND_STORE:
                    do_store(a0[i])
                elif kind == KIND_FENCE:
                    fence(core)
                elif kind == KIND_BARRIER:
                    group = a0[i]
                    i += 1
                    barrier_arrived[group].append(tid)
                    parked_count += 1
                    parked = True
                    if len(barrier_arrived[group]) == group_active[group]:
                        release_group(group)
                    break
                else:
                    raise ValueError(f"unknown operation kind {kind}")
                i += 1
                if core.time > horizon:
                    break
            indices[tid] = i
            if finished:
                finish_thread(tid)
            elif not parked:
                heappush(heap, (core.time, tid))
            if telemetry is not None and heap:
                telemetry.on_progress(machine, heap[0][0])

        if parked_count:
            raise RuntimeError(
                "barrier deadlock: threads still parked when the run drained"
            )

        for core in cores:
            core.drain()
        return self._collect(trace.workload_name, trace.footprint,
                             n_threads, effective_cap)

    # ------------------------------------------------------------------

    def _warm_caches(self, spans: List[tuple]) -> None:
        """Touch every block of the given ``(base, end)`` spans in order.

        Inserts each block (clean) into the L3 and, when the policy uses the
        locality monitor, mirrors the access there — the state a real run
        would have right after its (skipped) initialization phase.  No
        statistics or timing are charged: the shared Stats object is
        suspended for the duration, so e.g. monitor evictions during warming
        (which a large footprint produces by the hundred thousand) never
        pollute the measured run.

        Spans are region extents and therefore page-aligned at the base
        (AddressSpace allocations are page-aligned), which lets the sweep
        translate once per page: within a page, physical blocks are
        contiguous, so the per-block virtual addresses never need to be
        formed at all.  The insert/observe sequence is exactly the naive
        per-block loop's.
        """
        machine = self.machine
        hierarchy = machine.hierarchy
        translate = machine.page_table.translate
        l3 = hierarchy.l3
        l3_insert = l3.insert
        block_size = self.config.block_size
        block_bits = hierarchy.block_bits
        page_size = self.config.page_size
        use_monitor = self.policy.uses_monitor
        observe = machine.monitor.observe_llc_access if use_monitor else None
        # The per-block loops below inline SetAssocArray.insert (LRU only)
        # and LocalityMonitor.observe_llc_access: the sweep touches every
        # block of the footprint, and at five-digit block counts the two
        # calls per block dominate the warm time.  ``slots`` identity is
        # stable under suspension, so the monitor-eviction slot can be
        # bound outside the ``with``.
        flat = hierarchy._lru
        if flat:
            l3_sets, l3_mask, l3_ways = l3.sets, l3._set_mask, l3.n_ways
            if use_monitor:
                mon = machine.monitor
                m_sets = mon._sets
                m_mask = mon.n_sets - 1
                m_ways = mon.n_ways
                m_set_bits = mon._set_bits
                m_tag_bits = mon.partial_tag_bits
                m_tag_mask = mon._tag_mask
                m_slots = mon._slots
        with machine.stats.suspended():
            for base, end in spans:
                for page_vaddr in range(base, end, page_size):
                    page_end = page_vaddr + page_size
                    if page_end > end:
                        page_end = end
                    count = (page_end - page_vaddr + block_size - 1) // block_size
                    first = translate(page_vaddr) >> block_bits
                    if not flat:
                        if observe is None:
                            for block in range(first, first + count):
                                l3_insert(block, dirty=False)
                        else:
                            for block in range(first, first + count):
                                l3_insert(block, dirty=False)
                                observe(block)
                        continue
                    for block in range(first, first + count):
                        line_set = l3_sets[block & l3_mask]
                        if block in line_set:
                            line_set.move_to_end(block)
                        else:
                            if len(line_set) >= l3_ways:
                                line_set.popitem(last=False)
                                l3.evictions += 1
                            line_set[block] = False
                        if not use_monitor:
                            continue
                        m_set = m_sets[block & m_mask]
                        value = block >> m_set_bits
                        tag = 0
                        while value:
                            tag ^= value & m_tag_mask
                            value >>= m_tag_bits
                        if tag in m_set:
                            m_set[tag] = False
                            m_set.move_to_end(tag)
                        else:
                            if len(m_set) >= m_ways:
                                m_set.popitem(last=False)
                                m_slots[SLOT_LOCALITY_MONITOR_EVICTIONS] += 1.0
                            m_set[tag] = False

    # ------------------------------------------------------------------

    def _collect(
        self,
        workload_name: str,
        footprint: int,
        n_threads: int,
        max_ops_per_thread: Optional[int],
    ) -> RunResult:
        machine = self.machine
        stats = machine.stats
        cycles = max(core.time for core in machine.cores)
        # Publish the live gauges through the same helper the interval
        # sampler uses, so a final telemetry sample matches RunResult.stats
        # exactly.
        for name, value in live_gauges(machine, cycles).items():
            stats.set(name, value)
        if self.telemetry is not None:
            self.telemetry.finalize(machine, cycles)
        per_core = [core.instructions for core in machine.cores]
        energy = self.energy_model.compute(stats)
        return RunResult(
            workload=workload_name,
            policy=self.policy.value,
            cycles=cycles,
            instructions=sum(per_core),
            per_core_instructions=per_core,
            stats=stats.to_dict(),
            energy=energy,
            metadata={
                "n_threads": n_threads,
                "max_ops_per_thread": max_ops_per_thread,
                "footprint_bytes": footprint,
                "config_l3_size": self.config.l3_size,
            },
        )
