"""repro: a reproduction of "PIM-Enabled Instructions" (ISCA 2015).

A locality-aware processing-in-memory architecture simulator: PIM-enabled
instructions (PEIs) executed either on host-side PCUs or inside HMC vaults,
coordinated by a PEI Management Unit with a tag-less PIM directory and an
L3-mirrored locality monitor.

Quickstart::

    from repro import DispatchPolicy, System, make_workload, scaled_config

    system = System(scaled_config(), DispatchPolicy.LOCALITY_AWARE)
    result = system.run(make_workload("PR", "medium"),
                        max_ops_per_thread=20_000)
    print(result.cycles, result.pim_fraction)
"""

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import (
    DOT_PRODUCT,
    EUCLIDEAN_DIST,
    FP_ADD,
    HASH_PROBE,
    HISTOGRAM_BIN,
    INT_INCREMENT,
    INT_MIN,
    PIM_OPS,
    PimOp,
)
from repro.system.config import SystemConfig, paper_config, scaled_config, tiny_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads import (
    INPUT_SIZES,
    MultiprogrammedWorkload,
    WORKLOAD_NAMES,
    Workload,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "DOT_PRODUCT",
    "DispatchPolicy",
    "EUCLIDEAN_DIST",
    "FP_ADD",
    "HASH_PROBE",
    "HISTOGRAM_BIN",
    "INPUT_SIZES",
    "INT_INCREMENT",
    "INT_MIN",
    "MultiprogrammedWorkload",
    "PIM_OPS",
    "PimOp",
    "RunResult",
    "System",
    "SystemConfig",
    "WORKLOAD_NAMES",
    "Workload",
    "__version__",
    "make_workload",
    "paper_config",
    "scaled_config",
    "tiny_config",
]
