"""A per-core translation lookaside buffer.

The single-cache-block restriction guarantees a PEI needs exactly one TLB
access, the same as a normal memory instruction (Section 4.4) — so the TLB
is shared by loads, stores and PEIs alike and misses add a fixed page-walk
latency.
"""

from collections import OrderedDict

from repro.vm.page_table import PageTable


class Tlb:
    """Fully-associative LRU TLB in front of a shared page table."""

    __slots__ = ("page_table", "entries", "_cache", "walk_latency", "hits",
                 "misses", "_page_bits", "_page_mask", "_mapping")

    def __init__(self, page_table: PageTable, entries: int = 64, walk_latency: float = 100.0):
        if entries <= 0:
            raise ValueError(f"TLB must have at least one entry, got {entries}")
        self.page_table = page_table
        self.entries = entries
        self.walk_latency = walk_latency
        self._cache: OrderedDict = OrderedDict()
        # Cached geometry: translate() runs per memory op, and the
        # page_table attribute chain costs more than the arithmetic.
        self._page_bits = page_table.page_bits
        self._page_mask = page_table.page_size - 1
        # The page table's vpage->frame dict, cached for the inlined
        # already-mapped fast path in translate() (the dict is created once
        # in PageTable.__init__ and never replaced).
        self._mapping = page_table._mapping
        self.hits = 0
        self.misses = 0

    def translate(self, vaddr: int) -> "tuple[int, float]":
        """Return ``(physical_address, extra_latency)`` for ``vaddr``."""
        page_bits = self._page_bits
        vpage = vaddr >> page_bits
        cache = self._cache
        frame = cache.get(vpage)
        if frame is not None:
            cache.move_to_end(vpage)
            self.hits += 1
            return (frame << page_bits) | (vaddr & self._page_mask), 0.0
        self.misses += 1
        # PageTable.translate inlined for already-mapped pages; only a
        # first touch (fault) goes through the page table itself.
        frame = self._mapping.get(vpage)
        if frame is None:
            frame = self.page_table.translate(vaddr) >> page_bits
        cache[vpage] = frame
        if len(cache) > self.entries:
            cache.popitem(last=False)
        return ((frame << page_bits) | (vaddr & self._page_mask),
                self.walk_latency)

    def flush(self) -> None:
        self._cache.clear()
