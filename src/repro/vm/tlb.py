"""A per-core translation lookaside buffer.

The single-cache-block restriction guarantees a PEI needs exactly one TLB
access, the same as a normal memory instruction (Section 4.4) — so the TLB
is shared by loads, stores and PEIs alike and misses add a fixed page-walk
latency.
"""

from collections import OrderedDict

from repro.vm.page_table import PageTable


class Tlb:
    """Fully-associative LRU TLB in front of a shared page table."""

    __slots__ = ("page_table", "entries", "_cache", "walk_latency", "hits", "misses")

    def __init__(self, page_table: PageTable, entries: int = 64, walk_latency: float = 100.0):
        if entries <= 0:
            raise ValueError(f"TLB must have at least one entry, got {entries}")
        self.page_table = page_table
        self.entries = entries
        self.walk_latency = walk_latency
        self._cache: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def translate(self, vaddr: int) -> "tuple[int, float]":
        """Return ``(physical_address, extra_latency)`` for ``vaddr``."""
        vpage = vaddr >> self.page_table.page_bits
        frame = self._cache.get(vpage)
        if frame is not None:
            self._cache.move_to_end(vpage)
            self.hits += 1
            extra = 0.0
        else:
            self.misses += 1
            paddr = self.page_table.translate(vaddr)
            frame = paddr >> self.page_table.page_bits
            self._cache[vpage] = frame
            if len(self._cache) > self.entries:
                self._cache.popitem(last=False)
            extra = self.walk_latency
        offset = vaddr & (self.page_table.page_size - 1)
        return (frame << self.page_table.page_bits) | offset, extra

    def flush(self) -> None:
        self._cache.clear()
