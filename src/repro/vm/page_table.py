"""A flat page table allocating physical frames on first touch.

Frames are handed out in a deterministic pseudo-random order (a multiplicative
permutation) so that virtually-contiguous regions spread over DRAM rows the
way a real long-running system's physical memory does, instead of perfectly
sequentially.
"""

from typing import Dict

from repro.util.bitops import ilog2, is_power_of_two


class PageTable:
    """Virtual-page to physical-frame mapping with on-demand allocation."""

    # Large odd multiplier for the frame permutation (splitmix-style).
    _MULTIPLIER = 0x9E3779B97F4A7C15

    def __init__(self, page_size: int = 4096, n_frames: int = 1 << 20):
        if not is_power_of_two(page_size):
            raise ValueError(f"page size must be a power of two, got {page_size}")
        if not is_power_of_two(n_frames):
            raise ValueError(f"frame count must be a power of two, got {n_frames}")
        self.page_size = page_size
        self.page_bits = ilog2(page_size)
        self.n_frames = n_frames
        self._mapping: Dict[int, int] = {}
        self._next_sequence = 0
        self.page_faults = 0

    def _allocate_frame(self) -> int:
        if self._next_sequence >= self.n_frames:
            raise MemoryError("physical memory exhausted")
        frame = (self._next_sequence * self._MULTIPLIER) & (self.n_frames - 1)
        # The multiplier is odd and n_frames a power of two, so the map
        # sequence -> frame is a bijection: no frame is handed out twice.
        self._next_sequence += 1
        return frame

    def translate(self, vaddr: int) -> int:
        """Translate a virtual address, faulting in a frame if needed."""
        vpage = vaddr >> self.page_bits
        frame = self._mapping.get(vpage)
        if frame is None:
            frame = self._allocate_frame()
            self._mapping[vpage] = frame
            self.page_faults += 1
        return (frame << self.page_bits) | (vaddr & (self.page_size - 1))

    @property
    def mapped_pages(self) -> int:
        return len(self._mapping)
