"""A process address space with a named bump allocator.

Workloads allocate their data structures here and compute element addresses
as ``base + index * stride``.  Allocations are page-aligned so distinct
structures never share a page, and region names make traces and tests
self-describing.
"""

from dataclasses import dataclass
from typing import Dict

from repro.util.bitops import align_up


@dataclass(frozen=True)
class Region:
    """One named allocation."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Address of a byte offset inside the region (bounds-checked)."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside region '{self.name}' of size {self.size}")
        return self.base + offset


class AddressSpace:
    """Bump allocator over a virtual address range starting above NULL."""

    def __init__(self, page_size: int = 4096, base: int = 0x10000):
        self.page_size = page_size
        self._next = align_up(base, page_size)
        self.regions: Dict[str, Region] = {}

    def alloc(self, name: str, size: int, alignment: int = 64) -> Region:
        """Allocate ``size`` bytes; returns the new page-aligned region."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if name in self.regions:
            raise ValueError(f"region '{name}' already allocated")
        base = align_up(self._next, max(alignment, self.page_size))
        region = Region(name, base, size)
        self.regions[name] = region
        self._next = align_up(base + size, self.page_size)
        return region

    @property
    def footprint(self) -> int:
        """Total bytes allocated across all regions."""
        return sum(region.size for region in self.regions.values())
