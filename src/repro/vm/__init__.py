"""Virtual memory: address-space allocation, page table, per-core TLBs.

PEIs use virtual addresses exactly like normal instructions (Section 4.4):
the issuing core translates the target block through its own TLB before the
operation ever reaches the PMU, so the PMU, the PCUs and the memory system
deal in physical addresses only.
"""

from repro.vm.address_space import AddressSpace
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb

__all__ = ["AddressSpace", "PageTable", "Tlb"]
