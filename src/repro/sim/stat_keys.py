"""Central registry of every statistics key the simulator may emit.

The flat :class:`~repro.sim.stats.Stats` namespace is convenient but
typo-prone: ``stats.add("pei.host_dispatch")`` would silently create a new
counter next to ``pei.host_dispatched`` and every downstream consumer would
read zeros.  This module declares the complete key vocabulary, grouped by
subsystem; the ``SIM007`` lint rule (:mod:`repro.analysis.simlint`) flags
any literal ``stats.add``/``stats.set`` key in ``src/repro`` that is not
declared here.

When adding a new counter: add the key to the matching ``*_KEYS`` group (or
start a new group — any module-level tuple whose name ends in ``_KEYS`` is
picked up), then use it.  Gauges (written through ``Stats.set``) live in
``GAUGE_KEYS``.
"""

from typing import FrozenSet, Tuple

#: Cache hierarchy counters (repro.cache.hierarchy).
CACHE_KEYS: Tuple[str, ...] = (
    "l1.accesses",
    "l1.hits",
    "l2.accesses",
    "l2.hits",
    "l2.writebacks",
    "l3.accesses",
    "l3.hits",
    "l3.misses",
    "l3.writebacks",
)

#: MESI-lite coherence actions (repro.cache.hierarchy).
COHERENCE_KEYS: Tuple[str, ...] = (
    "coherence.invalidations",
    "coherence.cache_to_cache",
    "coherence.back_invalidations",
)

#: PMU coherence management for memory-side PEIs (repro.cache.hierarchy).
PMU_KEYS: Tuple[str, ...] = (
    "pmu.back_invalidations",
    "pmu.back_writebacks",
)

#: DRAM accesses, host and PIM paths (repro.mem.hmc).
DRAM_KEYS: Tuple[str, ...] = (
    "dram.reads",
    "dram.writes",
    "dram.pim_reads",
    "dram.pim_writes",
)

#: Off-chip link traffic (repro.mem.hmc, repro.mem.link).
OFFCHIP_KEYS: Tuple[str, ...] = (
    "offchip.read_packets",
    "offchip.write_packets",
    "offchip.pim_requests",
    "offchip.pim_responses",
)

#: Host core instruction mix (repro.cpu.core).
CORE_KEYS: Tuple[str, ...] = (
    "core.loads",
    "core.stores",
)

#: Locality monitor behaviour (repro.core.locality_monitor).
LOCALITY_MONITOR_KEYS: Tuple[str, ...] = (
    "locality_monitor.evictions",
    "locality_monitor.accesses",
    "locality_monitor.miss_advice",
    "locality_monitor.ignored_first_hits",
    "locality_monitor.host_advice",
)

#: PEI dispatch and execution (repro.core.pmu, repro.core.executor).
PEI_KEYS: Tuple[str, ...] = (
    "pei.host_dispatched",
    "pei.mem_dispatched",
    "pei.balanced_host_overrides",
    "pei.pfences",
    "pei.issued",
    "pei.operand_buffer_stall_cycles",
    "pei.host_executed",
    "pei.mem_executed",
)

#: PIM directory occupancy (repro.core.pim_directory).
PIM_DIRECTORY_KEYS: Tuple[str, ...] = (
    "pim_directory.accesses",
    "pim_directory.conflicts",
    "pim_directory.wait_cycles",
)

#: Gauges: byte totals read off the links at collection time and runtimes
#: (written through Stats.set, merged by max — see repro.sim.stats).
GAUGE_KEYS: Tuple[str, ...] = (
    "offchip.request_bytes",
    "offchip.response_bytes",
    "tsv.bytes",
    "xbar.bytes",
    "runtime.cycles",
)

#: Every declared counter key.
STAT_KEYS: FrozenSet[str] = frozenset(
    CACHE_KEYS + COHERENCE_KEYS + PMU_KEYS + DRAM_KEYS + OFFCHIP_KEYS
    + CORE_KEYS + LOCALITY_MONITOR_KEYS + PEI_KEYS + PIM_DIRECTORY_KEYS
)

#: Counters and gauges together.
ALL_KEYS: FrozenSet[str] = STAT_KEYS | frozenset(GAUGE_KEYS)


def is_declared(key: str) -> bool:
    """Is ``key`` part of the registered stats vocabulary?"""
    return key in ALL_KEYS


# ----------------------------------------------------------------------
# Slot registry: the batched counter fast path
# ----------------------------------------------------------------------
#
# The engine's per-op hot loops (cache hierarchy, cores, PEI executor, PMU,
# HMC) charge counters millions of times per run; a string-keyed dict update
# per event is the single largest Stats cost.  Each counter key below owns a
# fixed index into ``Stats.slots`` (a plain list of floats); hot components
# bind the list once at construction and do ``slots[SLOT_X] += 1.0`` inline.
# The slots are folded back into the flat named-counter namespace by
# ``Stats.flush_slots`` (and transparently by every read API), so consumers
# never see the split.  Gauges are excluded: they are written once through
# ``Stats.set`` at collection time.
#
# The ``SIM009`` lint rule flags literal ``stats.add`` calls with slot
# counters inside the hot modules, keeping the fast path load-bearing.

#: Counter keys batched through the slot fast path, in slot-index order.
SLOT_KEYS: Tuple[str, ...] = (
    CACHE_KEYS + COHERENCE_KEYS + PMU_KEYS + DRAM_KEYS + OFFCHIP_KEYS
    + CORE_KEYS + LOCALITY_MONITOR_KEYS + PEI_KEYS + PIM_DIRECTORY_KEYS
)

#: Key -> slot index.
SLOT_INDEX = {key: index for index, key in enumerate(SLOT_KEYS)}

#: Number of slots in ``Stats.slots``.
N_SLOTS: int = len(SLOT_KEYS)

# Named indices for the hot components (one constant per slot counter).
SLOT_L1_ACCESSES = SLOT_INDEX["l1.accesses"]
SLOT_L1_HITS = SLOT_INDEX["l1.hits"]
SLOT_L2_ACCESSES = SLOT_INDEX["l2.accesses"]
SLOT_L2_HITS = SLOT_INDEX["l2.hits"]
SLOT_L2_WRITEBACKS = SLOT_INDEX["l2.writebacks"]
SLOT_L3_ACCESSES = SLOT_INDEX["l3.accesses"]
SLOT_L3_HITS = SLOT_INDEX["l3.hits"]
SLOT_L3_MISSES = SLOT_INDEX["l3.misses"]
SLOT_L3_WRITEBACKS = SLOT_INDEX["l3.writebacks"]
SLOT_COHERENCE_INVALIDATIONS = SLOT_INDEX["coherence.invalidations"]
SLOT_COHERENCE_CACHE_TO_CACHE = SLOT_INDEX["coherence.cache_to_cache"]
SLOT_COHERENCE_BACK_INVALIDATIONS = SLOT_INDEX["coherence.back_invalidations"]
SLOT_PMU_BACK_INVALIDATIONS = SLOT_INDEX["pmu.back_invalidations"]
SLOT_PMU_BACK_WRITEBACKS = SLOT_INDEX["pmu.back_writebacks"]
SLOT_DRAM_READS = SLOT_INDEX["dram.reads"]
SLOT_DRAM_WRITES = SLOT_INDEX["dram.writes"]
SLOT_DRAM_PIM_READS = SLOT_INDEX["dram.pim_reads"]
SLOT_DRAM_PIM_WRITES = SLOT_INDEX["dram.pim_writes"]
SLOT_OFFCHIP_READ_PACKETS = SLOT_INDEX["offchip.read_packets"]
SLOT_OFFCHIP_WRITE_PACKETS = SLOT_INDEX["offchip.write_packets"]
SLOT_OFFCHIP_PIM_REQUESTS = SLOT_INDEX["offchip.pim_requests"]
SLOT_OFFCHIP_PIM_RESPONSES = SLOT_INDEX["offchip.pim_responses"]
SLOT_CORE_LOADS = SLOT_INDEX["core.loads"]
SLOT_CORE_STORES = SLOT_INDEX["core.stores"]
SLOT_LOCALITY_MONITOR_EVICTIONS = SLOT_INDEX["locality_monitor.evictions"]
SLOT_LOCALITY_MONITOR_ACCESSES = SLOT_INDEX["locality_monitor.accesses"]
SLOT_LOCALITY_MONITOR_MISS_ADVICE = SLOT_INDEX["locality_monitor.miss_advice"]
SLOT_LOCALITY_MONITOR_IGNORED_FIRST_HITS = SLOT_INDEX[
    "locality_monitor.ignored_first_hits"]
SLOT_LOCALITY_MONITOR_HOST_ADVICE = SLOT_INDEX["locality_monitor.host_advice"]
SLOT_PEI_HOST_DISPATCHED = SLOT_INDEX["pei.host_dispatched"]
SLOT_PEI_MEM_DISPATCHED = SLOT_INDEX["pei.mem_dispatched"]
SLOT_PEI_BALANCED_HOST_OVERRIDES = SLOT_INDEX["pei.balanced_host_overrides"]
SLOT_PEI_PFENCES = SLOT_INDEX["pei.pfences"]
SLOT_PEI_ISSUED = SLOT_INDEX["pei.issued"]
SLOT_PEI_OPERAND_BUFFER_STALL_CYCLES = SLOT_INDEX[
    "pei.operand_buffer_stall_cycles"]
SLOT_PEI_HOST_EXECUTED = SLOT_INDEX["pei.host_executed"]
SLOT_PEI_MEM_EXECUTED = SLOT_INDEX["pei.mem_executed"]
SLOT_PIM_DIRECTORY_ACCESSES = SLOT_INDEX["pim_directory.accesses"]
SLOT_PIM_DIRECTORY_CONFLICTS = SLOT_INDEX["pim_directory.conflicts"]
SLOT_PIM_DIRECTORY_WAIT_CYCLES = SLOT_INDEX["pim_directory.wait_cycles"]
