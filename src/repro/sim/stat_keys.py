"""Central registry of every statistics key the simulator may emit.

The flat :class:`~repro.sim.stats.Stats` namespace is convenient but
typo-prone: ``stats.add("pei.host_dispatch")`` would silently create a new
counter next to ``pei.host_dispatched`` and every downstream consumer would
read zeros.  This module declares the complete key vocabulary, grouped by
subsystem; the ``SIM007`` lint rule (:mod:`repro.analysis.simlint`) flags
any literal ``stats.add``/``stats.set`` key in ``src/repro`` that is not
declared here.

When adding a new counter: add the key to the matching ``*_KEYS`` group (or
start a new group — any module-level tuple whose name ends in ``_KEYS`` is
picked up), then use it.  Gauges (written through ``Stats.set``) live in
``GAUGE_KEYS``.
"""

from typing import FrozenSet, Tuple

#: Cache hierarchy counters (repro.cache.hierarchy).
CACHE_KEYS: Tuple[str, ...] = (
    "l1.accesses",
    "l1.hits",
    "l2.accesses",
    "l2.hits",
    "l2.writebacks",
    "l3.accesses",
    "l3.hits",
    "l3.misses",
    "l3.writebacks",
)

#: MESI-lite coherence actions (repro.cache.hierarchy).
COHERENCE_KEYS: Tuple[str, ...] = (
    "coherence.invalidations",
    "coherence.cache_to_cache",
    "coherence.back_invalidations",
)

#: PMU coherence management for memory-side PEIs (repro.cache.hierarchy).
PMU_KEYS: Tuple[str, ...] = (
    "pmu.back_invalidations",
    "pmu.back_writebacks",
)

#: DRAM accesses, host and PIM paths (repro.mem.hmc).
DRAM_KEYS: Tuple[str, ...] = (
    "dram.reads",
    "dram.writes",
    "dram.pim_reads",
    "dram.pim_writes",
)

#: Off-chip link traffic (repro.mem.hmc, repro.mem.link).
OFFCHIP_KEYS: Tuple[str, ...] = (
    "offchip.read_packets",
    "offchip.write_packets",
    "offchip.pim_requests",
    "offchip.pim_responses",
)

#: Host core instruction mix (repro.cpu.core).
CORE_KEYS: Tuple[str, ...] = (
    "core.loads",
    "core.stores",
)

#: Locality monitor behaviour (repro.core.locality_monitor).
LOCALITY_MONITOR_KEYS: Tuple[str, ...] = (
    "locality_monitor.evictions",
    "locality_monitor.accesses",
    "locality_monitor.miss_advice",
    "locality_monitor.ignored_first_hits",
    "locality_monitor.host_advice",
)

#: PEI dispatch and execution (repro.core.pmu, repro.core.executor).
PEI_KEYS: Tuple[str, ...] = (
    "pei.host_dispatched",
    "pei.mem_dispatched",
    "pei.balanced_host_overrides",
    "pei.pfences",
    "pei.issued",
    "pei.operand_buffer_stall_cycles",
    "pei.host_executed",
    "pei.mem_executed",
)

#: PIM directory occupancy (repro.core.pim_directory).
PIM_DIRECTORY_KEYS: Tuple[str, ...] = (
    "pim_directory.accesses",
    "pim_directory.conflicts",
    "pim_directory.wait_cycles",
)

#: Gauges: byte totals read off the links at collection time and runtimes
#: (written through Stats.set, merged by max — see repro.sim.stats).
GAUGE_KEYS: Tuple[str, ...] = (
    "offchip.request_bytes",
    "offchip.response_bytes",
    "tsv.bytes",
    "xbar.bytes",
    "runtime.cycles",
)

#: Every declared counter key.
STAT_KEYS: FrozenSet[str] = frozenset(
    CACHE_KEYS + COHERENCE_KEYS + PMU_KEYS + DRAM_KEYS + OFFCHIP_KEYS
    + CORE_KEYS + LOCALITY_MONITOR_KEYS + PEI_KEYS + PIM_DIRECTORY_KEYS
)

#: Counters and gauges together.
ALL_KEYS: FrozenSet[str] = STAT_KEYS | frozenset(GAUGE_KEYS)


def is_declared(key: str) -> bool:
    """Is ``key`` part of the registered stats vocabulary?"""
    return key in ALL_KEYS
