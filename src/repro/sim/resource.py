"""Occupancy-based shared resources.

A :class:`Resource` models a unit with a fixed service rate using a *fluid
backlog queue*: each acquisition adds its occupancy to a backlog that drains
one cycle per cycle, and the queueing delay seen by a request is the backlog
at its arrival.  For monotonically ordered arrivals this is exactly the
classic single-server FCFS queue; for the slightly out-of-order arrivals an
event-free engine produces (different cores run within a small time window
of each other, and PEI chains may touch a resource at future timestamps),
it degrades gracefully instead of letting one far-future acquisition block
every earlier request behind a phantom reservation.

This captures the first-order effects the PEI paper's results rest on —
bandwidth saturation, queueing delay, and utilization of off-chip links,
DRAM banks and PCU compute logic — without per-cycle simulation.
"""


class Resource:
    """A fixed-rate resource with fluid-backlog queueing."""

    __slots__ = ("name", "clock", "backlog", "busy_cycles", "served")

    def __init__(self, name: str = "resource"):
        self.name = name
        self.clock = 0.0  # latest arrival time observed
        self.backlog = 0.0  # queued work (cycles) as of `clock`
        self.busy_cycles = 0.0
        self.served = 0

    def _drain_to(self, arrival: float) -> None:
        if arrival > self.clock:
            gap = arrival - self.clock
            self.backlog = self.backlog - gap if self.backlog > gap else 0.0
            self.clock = arrival

    def acquire(self, arrival: float, occupancy: float) -> float:
        """Acquire the resource; return the *start* time of service.

        The caller's completion time is ``start + occupancy`` (plus any
        additional pipeline latency the caller wants to add on top).
        """
        # _drain_to, inlined: acquire runs several times per simulated op.
        if arrival > self.clock:
            gap = arrival - self.clock
            self.backlog = self.backlog - gap if self.backlog > gap else 0.0
            self.clock = arrival
        start = arrival + self.backlog
        self.backlog += occupancy
        self.busy_cycles += occupancy
        self.served += 1
        return start

    def peek(self, arrival: float) -> float:
        """Return when service *would* start, without acquiring."""
        if arrival > self.clock:
            gap = arrival - self.clock
            backlog = self.backlog - gap if self.backlog > gap else 0.0
            return arrival + backlog
        return arrival + self.backlog

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` cycles this resource spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def reset(self) -> None:
        self.clock = 0.0
        self.backlog = 0.0
        self.busy_cycles = 0.0
        self.served = 0


class BandwidthLink(Resource):
    """A resource whose occupancy is derived from a byte count and a rate.

    ``bytes_per_cycle`` is expressed in host-core cycles; a transfer of
    ``nbytes`` holds the link for ``nbytes / bytes_per_cycle`` cycles.
    The link also accumulates a byte counter used by the off-chip traffic
    experiments (Fig. 7) and by balanced dispatch (Section 7.4).
    """

    __slots__ = ("bytes_per_cycle", "bytes_transferred")

    def __init__(self, name: str, bytes_per_cycle: float):
        super().__init__(name)
        if bytes_per_cycle <= 0:
            raise ValueError(f"link rate must be positive, got {bytes_per_cycle}")
        self.bytes_per_cycle = bytes_per_cycle
        self.bytes_transferred = 0

    def transfer(self, arrival: float, nbytes: int) -> float:
        """Send ``nbytes`` over the link; return the *finish* time."""
        # Resource.acquire, inlined: every off-chip packet and crossbar
        # traversal lands here, so the extra frame is measurable.
        occupancy = nbytes / self.bytes_per_cycle
        if arrival > self.clock:
            gap = arrival - self.clock
            self.backlog = self.backlog - gap if self.backlog > gap else 0.0
            self.clock = arrival
        start = arrival + self.backlog
        self.backlog += occupancy
        self.busy_cycles += occupancy
        self.served += 1
        self.bytes_transferred += nbytes
        return start + occupancy

    def reset(self) -> None:
        super().reset()
        self.bytes_transferred = 0


class BankedResource:
    """A set of homogeneous resources selected by an index (e.g. L3 banks)."""

    __slots__ = ("banks",)

    def __init__(self, name: str, count: int):
        if count <= 0:
            raise ValueError(f"bank count must be positive, got {count}")
        self.banks = [Resource(f"{name}[{i}]") for i in range(count)]

    def __len__(self) -> int:
        return len(self.banks)

    def acquire(self, index: int, arrival: float, occupancy: float) -> float:
        return self.banks[index % len(self.banks)].acquire(arrival, occupancy)

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
