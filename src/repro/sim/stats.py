"""Event counters shared by all hardware models.

A Stats object is a flat named-counter registry.  Components increment
counters as side effects of timing calls; the benchmark harness and the
energy model read them afterwards.  Keeping one flat namespace (rather than
per-component objects) makes cross-cutting metrics such as "total off-chip
request bytes" trivial to aggregate and compare across configurations.

Names written through :meth:`Stats.set` (runtime, byte totals read off the
links at collection time) are *gauges*, not event counts: ``merge`` takes
their maximum instead of summing and ``scaled`` copies them unscaled,
so aggregating multiprogrammed per-core stats cannot double a runtime.
Typed instruments (including latency histograms) live in
:mod:`repro.obs.metrics`.
"""

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, Tuple


class Stats:
    """A dictionary of float counters with convenience arithmetic."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self):
        self._counters = defaultdict(float)
        self._gauges = set()

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] += value

    def set(self, name: str, value: float) -> None:
        """Set ``name`` to ``value`` and mark it as a gauge (e.g. runtime)."""
        self._counters[name] = value
        self._gauges.add(name)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def is_gauge(self, name: str) -> bool:
        """Was ``name`` last written through :meth:`set`?"""
        return name in self._gauges

    @property
    def gauge_names(self) -> FrozenSet[str]:
        return frozenset(self._gauges)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def merge(self, other: "Stats") -> None:
        """Aggregate ``other`` into this object.

        Counters add.  A name that is a gauge on *either* side takes the
        maximum of the two values instead — summing per-core runtimes (or
        link byte totals re-read at collection time) would fabricate work
        that never happened.
        """
        for name, value in other._counters.items():
            if name in other._gauges or name in self._gauges:
                current = self._counters.get(name)
                if current is None or value > current:
                    self._counters[name] = value
                self._gauges.add(name)
            else:
                self._counters[name] += value

    def scaled(self, factor: float) -> "Stats":
        """A copy with every *counter* multiplied by ``factor``.

        Gauges are copied unscaled: halving a run's event counts does not
        halve its runtime.
        """
        out = Stats()
        for name, value in self._counters.items():
            if name in self._gauges:
                out._counters[name] = value
            else:
                out._counters[name] = value * factor
        out._gauges = set(self._gauges)
        return out

    @contextmanager
    def suspended(self):
        """Discard every ``add``/``set`` made inside the block.

        Used for modeled-but-unmeasured phases (cache warm-start emulates the
        paper's skipped initialization): component state still mutates, but
        no event may be charged to the measured run.  Implemented by swapping
        in throwaway storage, so the hot-path ``add`` stays branch-free.
        """
        counters, gauges = self._counters, self._gauges
        self._counters = defaultdict(float)
        self._gauges = set()
        try:
            yield self
        finally:
            self._counters, self._gauges = counters, gauges

    def to_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"Stats({inner})"
