"""Event counters shared by all hardware models.

A Stats object is a flat named-counter registry.  Components increment
counters as side effects of timing calls; the benchmark harness and the
energy model read them afterwards.  Keeping one flat namespace (rather than
per-component objects) makes cross-cutting metrics such as "total off-chip
request bytes" trivial to aggregate and compare across configurations.
"""

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Stats:
    """A dictionary of float counters with convenience arithmetic."""

    __slots__ = ("_counters",)

    def __init__(self):
        self._counters = defaultdict(float)

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] += value

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value`` (for gauges such as runtime)."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def merge(self, other: "Stats") -> None:
        """Add all counters of ``other`` into this object."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def scaled(self, factor: float) -> "Stats":
        """Return a copy with every counter multiplied by ``factor``."""
        out = Stats()
        for name, value in self._counters.items():
            out._counters[name] = value * factor
        return out

    def to_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def clear(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"Stats({inner})"
