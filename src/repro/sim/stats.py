"""Event counters shared by all hardware models.

A Stats object is a flat named-counter registry.  Components increment
counters as side effects of timing calls; the benchmark harness and the
energy model read them afterwards.  Keeping one flat namespace (rather than
per-component objects) makes cross-cutting metrics such as "total off-chip
request bytes" trivial to aggregate and compare across configurations.

Hot-path counters additionally have a **batched fast path**: every key in
:data:`repro.sim.stat_keys.SLOT_KEYS` owns a fixed index into
:attr:`Stats.slots`, a plain list of floats.  The engine's per-op loops bind
that list once and do ``slots[SLOT_X] += 1.0`` inline — no method call, no
string hashing.  All read APIs (``get``, ``to_dict``, ``items``, ...)
compose the pending slot values with the named counters on the fly, and
:meth:`flush_slots` folds them in permanently, so consumers never observe
the split.  The ``slots`` list identity is stable for the lifetime of the
Stats object (``suspended()`` zeroes it in place), so components may cache
a reference.

Names written through :meth:`Stats.set` (runtime, byte totals read off the
links at collection time) are *gauges*, not event counts: ``merge`` takes
their maximum instead of summing and ``scaled`` copies them unscaled,
so aggregating multiprogrammed per-core stats cannot double a runtime.
Gauges are never slot-batched.  Typed instruments (including latency
histograms) live in :mod:`repro.obs.metrics`.
"""

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.sim.stat_keys import N_SLOTS, SLOT_INDEX, SLOT_KEYS


class Stats:
    """A dictionary of float counters with convenience arithmetic."""

    __slots__ = ("_counters", "_gauges", "slots")

    def __init__(self):
        self._counters = defaultdict(float)
        self._gauges = set()
        #: Batched accumulators, one per SLOT_KEYS entry.  Hot components
        #: bind this list at construction; its identity never changes.
        self.slots: List[float] = [0.0] * N_SLOTS

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] += value

    def set(self, name: str, value: float) -> None:
        """Set ``name`` to ``value`` and mark it as a gauge (e.g. runtime)."""
        self._counters[name] = value
        self._gauges.add(name)

    # Slot fast path ---------------------------------------------------

    def flush_slots(self) -> None:
        """Fold the batched slot accumulators into the named counters.

        Each slot is the complete accumulation chain of its key (events add
        into 0.0 in arrival order), so one flush into the (absent, i.e.
        0.0-initialized) named counter is float-identical to having charged
        every event through :meth:`add` directly.
        """
        slots = self.slots
        counters = self._counters
        for index in range(N_SLOTS):
            value = slots[index]
            if value:
                counters[SLOT_KEYS[index]] += value
                slots[index] = 0.0

    def _composed(self) -> Dict[str, float]:
        """Named counters plus pending slot values, without mutating."""
        out = dict(self._counters)
        slots = self.slots
        for index in range(N_SLOTS):
            value = slots[index]
            if value:
                key = SLOT_KEYS[index]
                out[key] = out.get(key, 0.0) + value
        return out

    # Reads (all compose pending slot values on the fly) ---------------

    def get(self, name: str, default: float = 0.0) -> float:
        index = SLOT_INDEX.get(name)
        pending = self.slots[index] if index is not None else 0.0
        stored = self._counters.get(name)
        if stored is not None:
            return stored + pending
        if pending:
            return pending
        return default

    def is_gauge(self, name: str) -> bool:
        """Was ``name`` last written through :meth:`set`?"""
        return name in self._gauges

    @property
    def gauge_names(self) -> FrozenSet[str]:
        return frozenset(self._gauges)

    def __getitem__(self, name: str) -> float:
        return self.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        if name in self._counters:
            return True
        index = SLOT_INDEX.get(name)
        return index is not None and self.slots[index] != 0.0

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._composed().items()))

    def merge(self, other: "Stats") -> None:
        """Aggregate ``other`` into this object.

        Counters add.  A name that is a gauge on *either* side takes the
        maximum of the two values instead — summing per-core runtimes (or
        link byte totals re-read at collection time) would fabricate work
        that never happened.
        """
        self.flush_slots()
        for name, value in other._composed().items():
            if name in other._gauges or name in self._gauges:
                current = self._counters.get(name)
                if current is None or value > current:
                    self._counters[name] = value
                self._gauges.add(name)
            else:
                self._counters[name] += value

    def scaled(self, factor: float) -> "Stats":
        """A copy with every *counter* multiplied by ``factor``.

        Gauges are copied unscaled: halving a run's event counts does not
        halve its runtime.
        """
        out = Stats()
        for name, value in self._composed().items():
            if name in self._gauges:
                out._counters[name] = value
            else:
                out._counters[name] = value * factor
        out._gauges = set(self._gauges)
        return out

    @contextmanager
    def suspended(self):
        """Discard every ``add``/``set`` made inside the block.

        Used for modeled-but-unmeasured phases (cache warm-start emulates the
        paper's skipped initialization): component state still mutates, but
        no event may be charged to the measured run.  Implemented by swapping
        in throwaway storage — and, for the slot fast path, by flushing the
        slots on entry and zeroing them in place on exit, so components
        holding a reference to ``slots`` keep writing to the same list.
        """
        self.flush_slots()
        counters, gauges = self._counters, self._gauges
        self._counters = defaultdict(float)
        self._gauges = set()
        try:
            yield self
        finally:
            slots = self.slots
            for index in range(N_SLOTS):
                slots[index] = 0.0
            self._counters, self._gauges = counters, gauges

    def to_dict(self) -> Dict[str, float]:
        return self._composed()

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        slots = self.slots
        for index in range(N_SLOTS):
            slots[index] = 0.0

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._composed().items()))
        return f"Stats({inner})"
