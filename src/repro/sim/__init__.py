"""Timing-simulation kernel.

The reproduction uses a *resource-occupancy* timing model rather than a
cycle-stepped one: every shared hardware resource (a DRAM bank, a link
direction, a crossbar port, a PCU's computation logic) is represented by a
:class:`~repro.sim.resource.Resource` that serializes work items.  A request's
end-to-end latency is the composition of the occupancies it acquires along its
path, so bandwidth saturation and queueing delay emerge without per-cycle
event processing.  Time is a float measured in host-core cycles (4 GHz).
"""

from repro.sim.clock import ClockDomain
from repro.sim.resource import BandwidthLink, BankedResource, Resource
from repro.sim.stats import Stats

__all__ = ["BandwidthLink", "BankedResource", "ClockDomain", "Resource", "Stats"]
