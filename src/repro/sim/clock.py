"""Clock-domain conversion.

Global simulation time is measured in *host-core cycles* (4 GHz in the
paper's Table 2).  Components running in other domains — the 2 GHz on-chip
crossbar, the 2 GHz memory-side PCUs, DRAM timing specified in nanoseconds —
convert their native quantities into host cycles through a ClockDomain.
"""


class ClockDomain:
    """Converts between a device clock, nanoseconds, and host-core cycles."""

    __slots__ = ("freq_ghz", "host_freq_ghz")

    def __init__(self, freq_ghz: float, host_freq_ghz: float = 4.0):
        if freq_ghz <= 0 or host_freq_ghz <= 0:
            raise ValueError("clock frequencies must be positive")
        self.freq_ghz = freq_ghz
        self.host_freq_ghz = host_freq_ghz

    def cycles(self, device_cycles: float) -> float:
        """Convert cycles of this domain into host-core cycles."""
        return device_cycles * (self.host_freq_ghz / self.freq_ghz)

    def from_ns(self, nanoseconds: float) -> float:
        """Convert a latency in nanoseconds into host-core cycles."""
        return nanoseconds * self.host_freq_ghz

    def bytes_per_host_cycle(self, gbytes_per_second: float) -> float:
        """Convert a bandwidth in GB/s into bytes per host-core cycle."""
        return gbytes_per_second / self.host_freq_ghz

    def __repr__(self) -> str:
        return f"ClockDomain({self.freq_ghz} GHz, host={self.host_freq_ghz} GHz)"
