"""Chrome Trace Event Format export of the PEI trace stream.

Converts a :class:`~repro.core.tracer.PeiTracer`'s ``PeiTrace``/``FenceTrace``
events into the JSON object format understood by Perfetto and
``chrome://tracing``: complete (``"ph": "X"``) slices on one track per host
core plus one track per HMC vault, with metadata events naming the tracks.

Timestamps: Chrome traces are nominally in microseconds; we emit simulated
host-core *cycles* directly (one "µs" = one cycle) and record the unit in
``otherData`` — relative durations are what the viewer is for.

Per PEI the core track gets the full issue→completion slice with nested
phase slices (``decide`` for the PMU visit, ``clean`` for the
back-invalidation/back-writeback), and memory-side PEIs additionally get a
slice on their target vault's track, so off-loading imbalance across vaults
is directly visible.

Multi-run stitching: every exporter can be namespaced with a ``pid_base``
so that traces from several runs/workers merge into one file without track
collisions, and :func:`merge_chrome_traces` performs exactly that merge —
worker ``i`` deterministically owns the pid range
``[(i+1)*WORKER_PID_STRIDE, (i+2)*WORKER_PID_STRIDE)``.
:func:`ledger_to_trace` renders a run-ledger event stream (see
:mod:`repro.obs.events`) as a wall-clock frontier trace: one track per
worker process with its simulate slices plus instant events for
cache/trace-store activity.
"""

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.tracer import FenceTrace, PeiTracer, PeiTrace
from repro.util.fsio import atomic_write_json

__all__ = [
    "ChromeTraceExporter",
    "HOST_PID",
    "VAULT_PID",
    "WORKER_PID_STRIDE",
    "ledger_to_trace",
    "merge_chrome_traces",
]

#: Synthetic process ids grouping the two kinds of tracks.
HOST_PID = 1
VAULT_PID = 2

#: Pid namespace width per merged worker trace.  A single export only uses
#: pids in ``[pid_base + 1, pid_base + WORKER_PID_STRIDE)``, so strided
#: bases can never collide however many traces are merged.
WORKER_PID_STRIDE = 100


class ChromeTraceExporter:
    """Builds a Chrome Trace Event JSON object from a PeiTracer."""

    def __init__(self, block_size: int = 64,
                 vault_of: Optional[Callable[[int], int]] = None,
                 pid_base: int = 0):
        """``vault_of`` maps a *block index* to its vault index; without it
        memory-side PEIs only appear on their issuing core's track.
        ``pid_base`` offsets every emitted pid, giving the export a stable
        private namespace when multiple exports are merged into one trace
        (worker ``i`` conventionally uses ``(i+1) * WORKER_PID_STRIDE``)."""
        self.block_size = block_size
        self.vault_of = vault_of
        if pid_base < 0 or pid_base % WORKER_PID_STRIDE:
            raise ValueError(
                f"pid_base must be a non-negative multiple of "
                f"{WORKER_PID_STRIDE}, got {pid_base}")
        self.host_pid = pid_base + HOST_PID
        self.vault_pid = pid_base + VAULT_PID

    @classmethod
    def for_machine(cls, machine) -> "ChromeTraceExporter":
        """An exporter wired to ``machine``'s physical address map."""
        address_map = machine.hmc.address_map
        block_size = machine.config.block_size

        def vault_of(block: int) -> int:
            return address_map.vault_of(block * block_size)

        return cls(block_size=block_size, vault_of=vault_of)

    # ------------------------------------------------------------------

    def export(self, tracer: PeiTracer) -> Dict:
        events: List[Dict] = []
        cores = set()
        vaults = set()
        for event in tracer.events:
            if isinstance(event, PeiTrace):
                self._emit_pei(event, events, cores, vaults)
            elif isinstance(event, FenceTrace):
                cores.add(event.core)
                events.append(self._slice(
                    "pfence", "fence", self.host_pid, event.core,
                    event.issue_time, event.stall,
                    {"release_time": event.release_time}))
        metadata = self._metadata(cores, vaults)
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "time_unit": "host-core cycles",
                "source": "repro.obs.ChromeTraceExporter",
                "dropped_events": tracer.dropped,
            },
        }

    def write(self, tracer: PeiTracer, path) -> None:
        atomic_write_json(path, self.export(tracer), sort_keys=False)

    # ------------------------------------------------------------------

    def _emit_pei(self, trace: PeiTrace, events: List[Dict],
                  cores: set, vaults: set) -> None:
        # Blocks come from workload address arithmetic and may be numpy
        # integers; coerce here so the JSON boundary stays stdlib-clean.
        block = int(trace.block)
        cores.add(trace.core)
        side = "host" if trace.on_host else "mem"
        events.append(self._slice(
            trace.op, f"pei,{side}", self.host_pid, trace.core,
            trace.issue_time, trace.latency,
            {
                "block": block,
                "on_host": bool(trace.on_host),
                "lock_wait": float(trace.lock_wait),
            }))
        if trace.decision_time is not None:
            events.append(self._slice(
                "decide", "pmu", self.host_pid, trace.core,
                trace.issue_time, trace.decision_time - trace.issue_time))
        if trace.clean_time is not None:
            clean_start = (trace.decision_time if trace.decision_time is not None
                           else trace.issue_time)
            events.append(self._slice(
                "clean.invalidate" if trace.clean_invalidate else "clean.writeback",
                "coherence", self.host_pid, trace.core,
                clean_start, trace.clean_time - clean_start))
        if not trace.on_host and self.vault_of is not None:
            vault = int(self.vault_of(block))
            vaults.add(vault)
            start = trace.grant_time
            if trace.clean_time is not None and trace.clean_time > start:
                start = trace.clean_time
            events.append(self._slice(
                trace.op, "pim", self.vault_pid, vault,
                start, trace.completion - start,
                {"core": trace.core, "block": block}))

    @staticmethod
    def _slice(name: str, cat: str, pid: int, tid: int,
               ts: float, dur: float, args: Optional[Dict] = None) -> Dict:
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "pid": pid,
            "tid": int(tid),
            "ts": float(ts),
            "dur": float(dur) if dur > 0.0 else 0.0,
        }
        if args:
            event["args"] = args
        return event

    def _metadata(self, cores: set, vaults: set) -> List[Dict]:
        def meta(name: str, pid: int, tid: int, value: str) -> Dict:
            return {"name": name, "ph": "M", "pid": pid, "tid": tid,
                    "args": {"name": value}}

        events = [meta("process_name", self.host_pid, 0, "host cores")]
        events += [meta("thread_name", self.host_pid, core, f"core {core}")
                   for core in sorted(cores)]
        if vaults:
            events.append(meta("process_name", self.vault_pid, 0,
                               "HMC vaults"))
            events += [meta("thread_name", self.vault_pid, vault,
                            f"vault {vault}")
                       for vault in sorted(vaults)]
        return events


# ----------------------------------------------------------------------
# Frontier-level stitching
# ----------------------------------------------------------------------


def merge_chrome_traces(traces: Sequence[Dict],
                        labels: Optional[Sequence[str]] = None) -> Dict:
    """Stitch per-run Chrome traces into one collision-free trace.

    Trace ``i`` (caller-ordered — sort by filename for determinism) has
    every pid remapped into its private namespace ``(i+1) *
    WORKER_PID_STRIDE + original_pid``, so two merged traces can never share
    a (pid, tid) track; ``process_name`` metadata is prefixed with the
    trace's label so Perfetto groups each run's host-core and vault tracks
    under a named process.  ``otherData`` aggregates the per-trace dropped
    counts.
    """
    if labels is not None and len(labels) != len(traces):
        raise ValueError(f"got {len(labels)} labels for {len(traces)} "
                         f"traces — the sequences must align")
    merged: List[Dict] = []
    dropped = 0
    for i, trace in enumerate(traces):
        base = (i + 1) * WORKER_PID_STRIDE
        label = labels[i] if labels is not None else f"run {i}"
        for event in trace.get("traceEvents", []):
            pid = int(event.get("pid", 0)) % WORKER_PID_STRIDE
            out = dict(event)
            out["pid"] = base + pid
            if (event.get("ph") == "M" and event.get("name") == "process_name"
                    and isinstance(event.get("args"), dict)):
                out["args"] = {"name": f"{label}: "
                                       f"{event['args'].get('name', '')}"}
            merged.append(out)
        other = trace.get("otherData", {})
        dropped += int(other.get("dropped_events", 0) or 0)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "time_unit": "host-core cycles (per-run clocks)",
            "source": "repro.obs.merge_chrome_traces",
            "merged_traces": len(traces),
            "dropped_events": dropped,
        },
    }


#: Track ids on the frontier (wall-clock) trace built from a run ledger.
FRONTIER_PID = 90
#: Ledger kinds rendered as instant events on the frontier track.
_LEDGER_INSTANTS = ("request_planned", "memo_hit", "disk_hit", "cache_miss",
                    "trace_capture", "trace_hit", "result_persisted",
                    "failure")


def ledger_to_trace(events: Iterable[Dict]) -> Dict:
    """Render a run-ledger stream as a wall-clock Chrome trace.

    One track per worker process carrying its ``simulate`` slices (start
    reconstructed as ``t - dur_s``: the parent stamps ``t`` when the batch
    payload lands), plus one frontier track of instant events for the
    cache and trace-store lifecycle.  Timestamps are harness wall time in
    microseconds — a different clock from the simulated-cycles unit of the
    per-run traces, which is why this lives in its own file rather than
    being merged into them.
    """
    out: List[Dict] = [{"name": "process_name", "ph": "M",
                        "pid": FRONTIER_PID, "tid": 0,
                        "args": {"name": "frontier (wall clock)"}}]
    workers: Dict[int, int] = {}
    for event in events:
        kind = event.get("kind")
        t_us = float(event.get("t", 0.0)) * 1e6
        if kind == "simulate_end":
            pid = int(event.get("worker", 0))
            if pid not in workers:
                workers[pid] = len(workers)
                out.append({"name": "thread_name", "ph": "M",
                            "pid": FRONTIER_PID, "tid": pid,
                            "args": {"name": f"worker {pid}"}})
            dur_us = float(event.get("dur_s", 0.0)) * 1e6
            out.append({
                "name": "simulate", "cat": "frontier", "ph": "X",
                "pid": FRONTIER_PID, "tid": pid,
                "ts": max(t_us - dur_us, 0.0), "dur": dur_us,
                "args": {"fingerprint": event.get("fingerprint", ""),
                         "cycles": event.get("cycles", 0.0),
                         "instructions": event.get("instructions", 0)},
            })
        elif kind in _LEDGER_INSTANTS:
            out.append({
                "name": kind, "cat": "ledger", "ph": "i",
                "pid": FRONTIER_PID, "tid": 0, "ts": t_us, "s": "g",
                "args": {"fingerprint": event.get("fingerprint", "")},
            })
    out.append({"name": "thread_name", "ph": "M", "pid": FRONTIER_PID,
                "tid": 0, "args": {"name": "cache / trace store"}})
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "time_unit": "harness wall microseconds",
            "source": "repro.obs.ledger_to_trace",
        },
    }
