"""Chrome Trace Event Format export of the PEI trace stream.

Converts a :class:`~repro.core.tracer.PeiTracer`'s ``PeiTrace``/``FenceTrace``
events into the JSON object format understood by Perfetto and
``chrome://tracing``: complete (``"ph": "X"``) slices on one track per host
core plus one track per HMC vault, with metadata events naming the tracks.

Timestamps: Chrome traces are nominally in microseconds; we emit simulated
host-core *cycles* directly (one "µs" = one cycle) and record the unit in
``otherData`` — relative durations are what the viewer is for.

Per PEI the core track gets the full issue→completion slice with nested
phase slices (``decide`` for the PMU visit, ``clean`` for the
back-invalidation/back-writeback), and memory-side PEIs additionally get a
slice on their target vault's track, so off-loading imbalance across vaults
is directly visible.
"""

import json
from typing import Callable, Dict, List, Optional

from repro.core.tracer import FenceTrace, PeiTracer, PeiTrace

__all__ = ["ChromeTraceExporter", "HOST_PID", "VAULT_PID"]

#: Synthetic process ids grouping the two kinds of tracks.
HOST_PID = 1
VAULT_PID = 2


class ChromeTraceExporter:
    """Builds a Chrome Trace Event JSON object from a PeiTracer."""

    def __init__(self, block_size: int = 64,
                 vault_of: Optional[Callable[[int], int]] = None):
        """``vault_of`` maps a *block index* to its vault index; without it
        memory-side PEIs only appear on their issuing core's track."""
        self.block_size = block_size
        self.vault_of = vault_of

    @classmethod
    def for_machine(cls, machine) -> "ChromeTraceExporter":
        """An exporter wired to ``machine``'s physical address map."""
        address_map = machine.hmc.address_map
        block_size = machine.config.block_size

        def vault_of(block: int) -> int:
            return address_map.vault_of(block * block_size)

        return cls(block_size=block_size, vault_of=vault_of)

    # ------------------------------------------------------------------

    def export(self, tracer: PeiTracer) -> Dict:
        events: List[Dict] = []
        cores = set()
        vaults = set()
        for event in tracer.events:
            if isinstance(event, PeiTrace):
                self._emit_pei(event, events, cores, vaults)
            elif isinstance(event, FenceTrace):
                cores.add(event.core)
                events.append(self._slice(
                    "pfence", "fence", HOST_PID, event.core,
                    event.issue_time, event.stall,
                    {"release_time": event.release_time}))
        metadata = self._metadata(cores, vaults)
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "time_unit": "host-core cycles",
                "source": "repro.obs.ChromeTraceExporter",
                "dropped_events": tracer.dropped,
            },
        }

    def write(self, tracer: PeiTracer, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.export(tracer), fh)

    # ------------------------------------------------------------------

    def _emit_pei(self, trace: PeiTrace, events: List[Dict],
                  cores: set, vaults: set) -> None:
        # Blocks come from workload address arithmetic and may be numpy
        # integers; coerce here so the JSON boundary stays stdlib-clean.
        block = int(trace.block)
        cores.add(trace.core)
        side = "host" if trace.on_host else "mem"
        events.append(self._slice(
            trace.op, f"pei,{side}", HOST_PID, trace.core,
            trace.issue_time, trace.latency,
            {
                "block": block,
                "on_host": bool(trace.on_host),
                "lock_wait": float(trace.lock_wait),
            }))
        if trace.decision_time is not None:
            events.append(self._slice(
                "decide", "pmu", HOST_PID, trace.core,
                trace.issue_time, trace.decision_time - trace.issue_time))
        if trace.clean_time is not None:
            clean_start = (trace.decision_time if trace.decision_time is not None
                           else trace.issue_time)
            events.append(self._slice(
                "clean.invalidate" if trace.clean_invalidate else "clean.writeback",
                "coherence", HOST_PID, trace.core,
                clean_start, trace.clean_time - clean_start))
        if not trace.on_host and self.vault_of is not None:
            vault = int(self.vault_of(block))
            vaults.add(vault)
            start = trace.grant_time
            if trace.clean_time is not None and trace.clean_time > start:
                start = trace.clean_time
            events.append(self._slice(
                trace.op, "pim", VAULT_PID, vault,
                start, trace.completion - start,
                {"core": trace.core, "block": block}))

    @staticmethod
    def _slice(name: str, cat: str, pid: int, tid: int,
               ts: float, dur: float, args: Optional[Dict] = None) -> Dict:
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "pid": pid,
            "tid": int(tid),
            "ts": float(ts),
            "dur": float(dur) if dur > 0.0 else 0.0,
        }
        if args:
            event["args"] = args
        return event

    @staticmethod
    def _metadata(cores: set, vaults: set) -> List[Dict]:
        def meta(name: str, pid: int, tid: int, value: str) -> Dict:
            return {"name": name, "ph": "M", "pid": pid, "tid": tid,
                    "args": {"name": value}}

        events = [meta("process_name", HOST_PID, 0, "host cores")]
        events += [meta("thread_name", HOST_PID, core, f"core {core}")
                   for core in sorted(cores)]
        if vaults:
            events.append(meta("process_name", VAULT_PID, 0, "HMC vaults"))
            events += [meta("thread_name", VAULT_PID, vault, f"vault {vault}")
                       for vault in sorted(vaults)]
        return events
