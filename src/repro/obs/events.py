"""The run ledger: a schema-versioned JSONL event stream for the frontier.

PR 2's telemetry watches one *simulation*; the run ledger watches the
*benchmark harness* — the plan/execute frontier that fans dozens of
:class:`~repro.bench.frontier.RunRequest`\\ s across worker processes, disk
caches, and the trace store.  Every lifecycle edge of a request emits one
event: planned, served from the memo or the disk cache, trace captured or
replayed from the store, dispatched to a worker, simulated (with wall-clock
duration), persisted, or failed.  The stream is what powers
``python -m repro.bench run --progress`` (live TTY progress), the frontier
summary embedded in ``BENCH_<runid>.json`` trajectory records, and the
``python -m repro.obs dashboard`` report.

Events are plain JSON objects.  The parent process owns sequencing: every
event carries a contiguous ``seq`` and a non-decreasing wall-time ``t``
(seconds since the ledger opened), both stamped by the parent — worker
processes build bare events with :func:`worker_event` and ship them back in
batch payloads, where :meth:`RunLedger.absorb` merges them
*order-preserving*, exactly like batch results.  The first record is always
a ``ledger_start`` header carrying the schema version
(:data:`EVENT_SCHEMA`), which ``python -m repro.analysis telemetry``
validates against :data:`EVENT_FIELDS`.

The whole layer sits behind :data:`NULL_LEDGER`, mirroring
:data:`~repro.obs.hooks.NULL_OBS`: with the ledger disabled every emit is a
no-op method on a shared singleton, and the engine hot loop never sees any
of it — events only exist at the bench-harness layer.
"""

import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.util.fsio import atomic_write_text

__all__ = [
    "EVENT_FIELDS",
    "EVENT_SCHEMA",
    "NULL_LEDGER",
    "NullLedger",
    "RunLedger",
    "read_events",
    "worker_event",
]

#: Version tag carried by every ledger's ``ledger_start`` header record.
#: Bump the suffix whenever an event kind or required field changes shape.
EVENT_SCHEMA = "repro.obs.events/1"

#: Required fields per event kind, beyond the envelope every event carries
#: (``seq``, ``t``, ``kind``).  This table *is* the schema: the
#: ``repro.analysis`` checker validates streams against it, so producers
#: and the checker can never drift apart.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    # Stream header (always the first record).
    "ledger_start": ("schema",),
    # Planning and cache lifecycle (parent process).
    "request_planned": ("fingerprint", "label"),
    "memo_hit": ("fingerprint",),
    "disk_hit": ("fingerprint",),
    "cache_miss": ("fingerprint",),
    "result_persisted": ("fingerprint",),
    # Trace-store lifecycle (parent process).
    "trace_capture": ("fingerprint",),
    "trace_hit": ("fingerprint", "source"),
    "trace_uncompilable": ("fingerprint",),
    # Execution lifecycle (worker processes, absorbed by the parent).
    "worker_dispatch": ("fingerprint", "worker"),
    "simulate_start": ("fingerprint", "worker"),
    "simulate_end": ("fingerprint", "worker", "dur_s", "cycles",
                     "instructions"),
    "failure": ("fingerprint", "error"),
}

#: Envelope fields the parent stamps on every event.
ENVELOPE_FIELDS = ("seq", "t", "kind")


def worker_event(kind: str, **fields) -> Dict:
    """A bare event built inside a worker process (no ``seq``/``t`` yet).

    Workers have their own clocks and no view of the parent's sequence, so
    they only record the kind and payload fields (durations included);
    :meth:`RunLedger.absorb` stamps sequencing when the batch lands.
    """
    event = {"kind": kind}
    event.update(fields)
    return event


class NullLedger:
    """Disabled run ledger: every hook does nothing (mirrors NullObs)."""

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, **fields) -> None:
        return None

    def absorb(self, events: Iterable[Dict], notify: bool = True) -> None:
        return None


#: The shared disabled ledger the bench layer defaults to.
NULL_LEDGER = NullLedger()


class RunLedger(NullLedger):
    """An in-memory, append-only event stream for one runner session.

    ``listener`` (optional) is called with each event as it is appended —
    the live progress renderer hooks in here.  ``clock`` is injectable for
    deterministic tests; it measures harness wall time only and never
    touches simulated time.
    """

    __slots__ = ("events", "listener", "_clock", "_t0", "_last_t")

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 listener: Optional[Callable[[Dict], None]] = None):
        # Harness wall time only; ledger timestamps never feed simulated time.
        self._clock = clock if clock is not None else time.perf_counter
        self.listener = listener
        self.events: List[Dict] = []
        self._t0 = self._clock()
        self._last_t = 0.0
        self.emit("ledger_start", schema=EVENT_SCHEMA)

    # Emission ----------------------------------------------------------

    def emit(self, kind: str, **fields) -> Dict:
        """Append one parent-side event, stamping ``seq`` and ``t``."""
        now = self._clock() - self._t0
        if now < self._last_t:   # defensive: keep t non-decreasing
            now = self._last_t
        self._last_t = now
        event = {"seq": len(self.events), "t": now, "kind": kind}
        event.update(fields)
        self.events.append(event)
        if self.listener is not None:
            self.listener(event)
        return event

    def absorb(self, events: Iterable[Dict], notify: bool = True) -> None:
        """Merge worker events in the given (request) order.

        Sequencing is re-stamped by the parent so the merged stream has one
        contiguous ``seq`` and one clock, whatever process produced each
        event.  ``notify=False`` skips the listener — used when the caller
        already forwarded the events live (out of completion order) for
        progress ticks and only wants the deterministic merge here.
        """
        listener = self.listener
        if not notify:
            self.listener = None
        try:
            for event in events:
                payload = {key: value for key, value in event.items()
                           if key not in ENVELOPE_FIELDS}
                self.emit(event["kind"], **payload)
        finally:
            self.listener = listener

    # Digest and serialization ------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Events per kind (the ``ledger_start`` header excluded)."""
        out: Dict[str, int] = {}
        for event in self.events:
            kind = event["kind"]
            if kind == "ledger_start":
                continue
            out[kind] = out.get(kind, 0) + 1
        return out

    def to_jsonl(self) -> str:
        return "".join(json.dumps(event, sort_keys=True) + "\n"
                       for event in self.events)

    def write_jsonl(self, path) -> Path:
        """Publish the merged stream atomically (temp-file + replace).

        This is the parent-side, end-of-run snapshot; live multi-writer
        streams (a listener appending as events land) go through
        :func:`repro.util.fsio.append_jsonl` instead, whose single
        ``O_APPEND`` write per batch keeps concurrent lines intact.
        """
        return atomic_write_text(Path(path), self.to_jsonl())

    def __len__(self) -> int:
        return len(self.events)


def read_events(path, strict: bool = False) -> List[Dict]:
    """Load a run-ledger JSONL stream, tolerating a torn final line.

    A crash mid-``write`` (or tailing a live stream) can leave a truncated
    last line; by default it is dropped silently — every complete event is
    still returned.  A torn line anywhere *else*, or ``strict=True``, raises
    ``ValueError`` (the schema checker reports torn lines as problems
    regardless; this loader is for consumers that want best-effort data).
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    events: List[Dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if not strict and lineno == len(lines):
                break   # torn final line: an interrupted writer
            raise ValueError(
                f"{path}:{lineno}: torn or invalid JSONL line: {exc.msg}"
            ) from exc
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{lineno}: event is not an object")
        events.append(event)
    return events
