"""The component-facing observability hook API and its null object.

Hardware models (executor, PMU, HMC, vaults, links) hold an ``obs``
attribute initialized to :data:`NULL_OBS`.  With telemetry disabled every
hook is a no-op method on a shared singleton — no allocation, no branching
beyond one attribute read — which is what keeps the zero-overhead-when-
disabled property: hot paths may guard multi-metric blocks with
``if self.obs.enabled:`` and pay a single attribute check.

Hooks only *observe*; they never return values into the timing model, so a
run produces bit-identical :class:`~repro.system.result.RunResult` output
with telemetry on or off (pinned by ``tests/obs/test_zero_overhead.py``).
"""

from typing import Optional

from repro.obs.metrics import MetricRegistry
from repro.obs.profiler import NULL_SPAN, ScopeProfiler

__all__ = ["NULL_OBS", "NullObs", "Obs"]


class NullObs:
    """Disabled observability: every hook does nothing."""

    __slots__ = ()

    enabled = False

    def span(self, name: str):
        return NULL_SPAN

    def count(self, name: str, amount: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


#: The shared disabled sink every component defaults to.
NULL_OBS = NullObs()


class Obs(NullObs):
    """Live observability: a metric registry plus a scope profiler."""

    __slots__ = ("metrics", "profiler")

    enabled = True

    def __init__(self, metrics: Optional[MetricRegistry] = None,
                 profiler: Optional[ScopeProfiler] = None):
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.profiler = profiler if profiler is not None else ScopeProfiler()

    def span(self, name: str):
        return self.profiler.span(name)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
