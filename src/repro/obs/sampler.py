"""Interval sampling: a time series of the run's cumulative state.

The engine advances threads in approximate global-time order, so the
sampler hooks the engine loop: whenever the *laggard* thread's time crosses
the next sample boundary, every thread has simulated past that boundary and
a snapshot of the cumulative counters is a faithful (batch-window-blurred)
picture of the machine at that simulated instant.  The final snapshot is
taken at collection time with the same live-gauge overlay ``RunResult``
uses, so its ``stats`` dict equals ``RunResult.stats`` exactly.

Records serialize to JSON Lines (one JSON object per line) next to the
benchmark outputs; ``python -m repro.obs report`` and any external tool
(pandas, jq) consume them directly.
"""

import json
from typing import Dict, List, Optional

from repro.util.fsio import atomic_write_text

__all__ = ["IntervalSampler", "live_gauges"]

#: Counters whose per-interval deltas are precomputed into each record —
#: the time-varying signals the paper's dynamic claims are about.
DELTA_COUNTERS = (
    "pei.issued",
    "pei.host_executed",
    "pei.mem_executed",
    "dram.reads",
    "dram.writes",
    "dram.pim_reads",
    "dram.pim_writes",
    "offchip.request_bytes",
    "offchip.response_bytes",
)


def live_gauges(machine, cycles: float) -> Dict[str, float]:
    """The gauges ``System._collect`` publishes, read live from the machine.

    Shared by final result collection and interval sampling so a sample at
    collection time matches :attr:`RunResult.stats` exactly.
    """
    channel = machine.hmc.channel
    return {
        "offchip.request_bytes": float(channel.request.bytes_transferred),
        "offchip.response_bytes": float(channel.response.bytes_transferred),
        "tsv.bytes": float(sum(vault.tsv.bytes_transferred
                               for vault in machine.hmc.vaults)),
        "xbar.bytes": float(machine.crossbar.bytes_transferred),
        "runtime.cycles": cycles,
    }


def _derived(machine, t: float, stats: Dict[str, float]) -> Dict[str, float]:
    """Instantaneous/derived signals worth plotting over time."""
    channel = machine.hmc.channel
    host = stats.get("pei.host_executed", 0.0)
    mem = stats.get("pei.mem_executed", 0.0)
    peis = host + mem
    monitor_accesses = stats.get("locality_monitor.accesses", 0.0)
    monitor_hits = stats.get("locality_monitor.host_advice", 0.0)
    host_pcus = machine.host_pcus
    vault_pcus = [vault.pcu for vault in machine.hmc.vaults
                  if vault.pcu is not None]
    out = {
        "pim_fraction": mem / peis if peis else 0.0,
        "monitor_hit_rate": (monitor_hits / monitor_accesses
                             if monitor_accesses else 0.0),
        "offchip_request_flits_ema": channel.req_flits.read(t),
        "offchip_response_flits_ema": channel.res_flits.read(t),
        "offchip_request_utilization": channel.request.utilization(t),
        "offchip_response_utilization": channel.response.utilization(t),
        "host_pcu_utilization": (
            sum(p.compute_logic.utilization(t) for p in host_pcus)
            / len(host_pcus) if host_pcus else 0.0),
        "vault_pcu_utilization": (
            sum(p.compute_logic.utilization(t) for p in vault_pcus)
            / len(vault_pcus) if vault_pcus else 0.0),
        "host_operand_buffer_inflight": float(
            sum(p.operand_buffer.in_flight for p in host_pcus)),
    }
    return out


class IntervalSampler:
    """Snapshots the machine every ``interval`` simulated cycles."""

    def __init__(self, interval: float = 10_000.0):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self.records: List[Dict] = []
        self._next = interval
        self._prev_stats: Dict[str, float] = {}

    def advance(self, machine, now: float) -> None:
        """Emit samples for every boundary the laggard time passed."""
        while self._next <= now:
            self._sample(machine, self._next)
            self._next += self.interval

    def finalize(self, machine, cycles: float) -> None:
        """Emit the end-of-run cumulative record (matches RunResult.stats)."""
        self._sample(machine, cycles, final=True)

    # ------------------------------------------------------------------

    def _sample(self, machine, t: float, final: bool = False) -> None:
        stats = dict(machine.stats.to_dict())
        stats.update(live_gauges(machine, t))
        delta = {
            name: stats.get(name, 0.0) - self._prev_stats.get(name, 0.0)
            for name in DELTA_COUNTERS
        }
        self._prev_stats = stats
        record = {
            "seq": len(self.records),
            "t": t,
            "final": final,
            "stats": stats,
            "delta": delta,
            "derived": _derived(machine, t, stats),
        }
        self.records.append(record)

    # Serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.records)

    def write_jsonl(self, path) -> None:
        # The whole series is in memory; publish it atomically so a bundle
        # reader can never observe a half-written stream.
        atomic_write_text(path, self.to_jsonl())

    def last(self) -> Optional[Dict]:
        return self.records[-1] if self.records else None

    def __len__(self) -> int:
        return len(self.records)
