"""The telemetry facade: one object wiring the whole observability stack.

A :class:`Telemetry` instance owns the live :class:`~repro.obs.hooks.Obs`
sink (metric registry + scope profiler), an :class:`~repro.obs.sampler.
IntervalSampler`, and a :class:`~repro.core.tracer.PeiTracer` feeding the
Chrome-trace export.  Pass one to :class:`~repro.system.system.System` and
every layer of the machine reports into it::

    telemetry = Telemetry(interval=5_000.0)
    system = System(tiny_config(), policy, telemetry=telemetry)
    result = system.run(workload)
    telemetry.write(Path("out"), "pagerank_locality")   # 3 files

``write`` produces ``<stem>.intervals.jsonl`` (time series),
``<stem>.trace.json`` (Chrome Trace Event Format), and ``<stem>.run.json``
(the RunResult plus a telemetry summary) — the bundle
``python -m repro.obs report`` and the ``repro.analysis`` schema checks
consume.
"""

import re
from pathlib import Path
from typing import Dict, Optional

from repro.core.tracer import PeiTracer
from repro.obs.hooks import Obs
from repro.obs.sampler import IntervalSampler
from repro.obs.trace_export import ChromeTraceExporter
from repro.util.fsio import atomic_write_json

__all__ = ["Telemetry", "bundle_stem"]


def bundle_stem(*parts: str) -> str:
    """A filesystem-safe bundle stem joined from identifying parts.

    Every non-empty part is sanitized and joined with ``_``; callers that
    may write several bundles of the same (workload, policy) into one
    directory — parallel benchmark workers sweeping sizes or configs —
    append a discriminator part (e.g. a request-fingerprint prefix) so
    bundles never overwrite each other across processes.
    """
    cleaned = [re.sub(r"[^A-Za-z0-9._-]+", "-", p).lower()
               for p in parts if p]
    return "_".join(cleaned)

#: Default retained trace events; bounds memory on long runs (the tracer
#: counts overflow in ``dropped`` and the exporter records it).
DEFAULT_TRACE_CAPACITY = 200_000


class Telemetry:
    """Full observability for one simulated run."""

    def __init__(self, interval: float = 10_000.0,
                 trace_capacity: Optional[int] = DEFAULT_TRACE_CAPACITY):
        self.obs = Obs()
        self.sampler = IntervalSampler(interval)
        self.tracer = PeiTracer(capacity=trace_capacity)
        self._machine = None

    # Lifecycle (driven by System) --------------------------------------

    def attach(self, machine) -> None:
        """Wire the sink into every instrumented layer of ``machine``."""
        self._machine = machine
        machine.executor.obs = self.obs
        machine.pmu.obs = self.obs
        machine.hmc.obs = self.obs
        machine.hmc.channel.obs = self.obs
        for vault in machine.hmc.vaults:
            vault.obs = self.obs
        if machine.executor.tracer is None:
            machine.executor.tracer = self.tracer
        else:
            # A tracer is already attached (e.g. the simsan test fixture):
            # share it rather than silently replacing the existing consumer.
            self.tracer = machine.executor.tracer

    def on_progress(self, machine, now: float) -> None:
        """Engine-loop hook: sample any interval boundaries passed."""
        self.sampler.advance(machine, now)

    def finalize(self, machine, cycles: float) -> None:
        """End-of-run hook: emit the final cumulative interval record."""
        self.sampler.finalize(machine, cycles)

    # Export -------------------------------------------------------------

    def summary(self) -> Dict:
        """JSON-safe digest: instruments, span profile, stream sizes."""
        return {
            "metrics": self.obs.metrics.to_dict(),
            "profile": self.obs.profiler.to_dict(),
            "intervals": {
                "count": len(self.sampler),
                "interval_cycles": self.sampler.interval,
            },
            "trace": {
                "events": len(self.tracer.events),
                "dropped": self.tracer.dropped,
            },
        }

    def export_trace(self) -> Dict:
        if self._machine is not None:
            exporter = ChromeTraceExporter.for_machine(self._machine)
        else:
            exporter = ChromeTraceExporter()
        return exporter.export(self.tracer)

    def write(self, out_dir, stem: str,
              result: Optional[object] = None) -> Dict[str, Path]:
        """Write the telemetry bundle; returns the written paths.

        ``result`` is the run's :class:`~repro.system.result.RunResult`
        (anything with ``to_dict``); it is embedded in ``<stem>.run.json``
        so the report CLI can show run context next to the telemetry.
        """
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = {
            "intervals": out_dir / f"{stem}.intervals.jsonl",
            "trace": out_dir / f"{stem}.trace.json",
            "run": out_dir / f"{stem}.run.json",
        }
        # Atomic publishes throughout: parallel workers sweeping the same
        # (workload, policy) and interrupted runs can never leave a torn
        # bundle for the report CLI or the schema checker to choke on.
        self.sampler.write_jsonl(paths["intervals"])
        atomic_write_json(paths["trace"], self.export_trace(),
                          sort_keys=False)
        bundle = {
            "result": result.to_dict() if result is not None else None,
            "telemetry": self.summary(),
            "files": {
                "intervals": paths["intervals"].name,
                "trace": paths["trace"].name,
            },
        }
        atomic_write_json(paths["run"], bundle, indent=2)
        return paths
