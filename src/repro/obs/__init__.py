"""``repro.obs``: the telemetry subsystem.

Gives every simulated run a full observability stack:

* :class:`~repro.obs.metrics.MetricRegistry` — typed instruments (monotonic
  counters, gauges, log-scaled histograms with p50/p95/p99);
* :class:`~repro.obs.sampler.IntervalSampler` — a JSONL time series of the
  machine's cumulative state every N simulated cycles;
* :class:`~repro.obs.trace_export.ChromeTraceExporter` — the PeiTracer event
  stream as Chrome Trace Event Format JSON (Perfetto/``chrome://tracing``),
  with per-core and per-vault tracks;
* :mod:`~repro.obs.profiler` — scoped wall-clock spans profiling the
  simulator's own hot paths;
* :class:`~repro.obs.telemetry.Telemetry` — the facade wiring all of the
  above into a :class:`~repro.system.system.System`.

Above the per-run stack sits the frontier layer:

* :class:`~repro.obs.events.RunLedger` — a schema-versioned JSONL run
  ledger, one event per lifecycle edge of every benchmark request;
* :class:`~repro.obs.aggregate.FrontierAggregator` — cross-worker metric
  and span aggregation into a frontier summary (cache hit rates, simulate
  latency percentiles, per-worker utilization);
* :func:`~repro.obs.trace_export.merge_chrome_traces` /
  :func:`~repro.obs.trace_export.ledger_to_trace` — stitched multi-worker
  Perfetto traces;
* :mod:`~repro.obs.dashboard` — a self-contained HTML sweep dashboard.

All hooks default to the :data:`~repro.obs.hooks.NULL_OBS` null object (and
the ledger to :data:`~repro.obs.events.NULL_LEDGER`), so a run without
telemetry pays no observable overhead and produces identical results.  See
``docs/observability.md`` and ``python -m repro.obs report``.
"""

from repro.obs.aggregate import FrontierAggregator, registry_from_dict
from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_SCHEMA,
    NULL_LEDGER,
    NullLedger,
    RunLedger,
    read_events,
    worker_event,
)
from repro.obs.hooks import NULL_OBS, NullObs, Obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.profiler import ScopeProfiler
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry
from repro.obs.trace_export import (
    ChromeTraceExporter,
    ledger_to_trace,
    merge_chrome_traces,
)

__all__ = [
    "NULL_OBS",
    "NullObs",
    "Obs",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "ScopeProfiler",
    "IntervalSampler",
    "Telemetry",
    "ChromeTraceExporter",
    "EVENT_FIELDS",
    "EVENT_SCHEMA",
    "NULL_LEDGER",
    "NullLedger",
    "RunLedger",
    "read_events",
    "worker_event",
    "FrontierAggregator",
    "registry_from_dict",
    "ledger_to_trace",
    "merge_chrome_traces",
]
