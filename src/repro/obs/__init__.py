"""``repro.obs``: the telemetry subsystem.

Gives every simulated run a full observability stack:

* :class:`~repro.obs.metrics.MetricRegistry` — typed instruments (monotonic
  counters, gauges, log-scaled histograms with p50/p95/p99);
* :class:`~repro.obs.sampler.IntervalSampler` — a JSONL time series of the
  machine's cumulative state every N simulated cycles;
* :class:`~repro.obs.trace_export.ChromeTraceExporter` — the PeiTracer event
  stream as Chrome Trace Event Format JSON (Perfetto/``chrome://tracing``),
  with per-core and per-vault tracks;
* :mod:`~repro.obs.profiler` — scoped wall-clock spans profiling the
  simulator's own hot paths;
* :class:`~repro.obs.telemetry.Telemetry` — the facade wiring all of the
  above into a :class:`~repro.system.system.System`.

All hooks default to the :data:`~repro.obs.hooks.NULL_OBS` null object, so
a run without telemetry pays no observable overhead and produces identical
results.  See ``docs/observability.md`` and ``python -m repro.obs report``.
"""

from repro.obs.hooks import NULL_OBS, NullObs, Obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.profiler import ScopeProfiler
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry
from repro.obs.trace_export import ChromeTraceExporter

__all__ = [
    "NULL_OBS",
    "NullObs",
    "Obs",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "ScopeProfiler",
    "IntervalSampler",
    "Telemetry",
    "ChromeTraceExporter",
]
