"""Scoped wall-clock profiling of the *simulator's own* hot paths.

``obs.span("pmu.directory")`` brackets a region of simulator code and
accumulates how much host time the region consumed across a run.  This is
resource profiling of the reproduction itself — which Python code burns the
wall time — not a simulated-time measurement: simulated timing lives in the
timing model and in :mod:`repro.obs.metrics` histograms.

This module is the one sanctioned home of wall-clock reads in ``src/repro``
(simlint SIM001 exempts it, the same way ``util/rng.py`` is exempt from
SIM002): span durations never feed back into simulated timestamps, so
determinism of results is preserved even while profiling.  The clock is
injectable for deterministic tests.
"""

import time
from typing import Callable, Dict, List, Optional

__all__ = ["NULL_SPAN", "ScopeProfiler", "SpanStats"]


class SpanStats:
    """Accumulated wall-clock cost of one named scope."""

    __slots__ = ("name", "calls", "total_s", "peak_s")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.peak_s = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed > self.peak_s:
            self.peak_s = elapsed

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "total_s": self.total_s,
                "peak_s": self.peak_s}


class _Span:
    """One active scope; a context manager handed out by ``span()``."""

    __slots__ = ("_profiler", "_stats", "_start")

    def __init__(self, profiler: "ScopeProfiler", stats: SpanStats):
        self._profiler = profiler
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._profiler.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stats.add(self._profiler.clock() - self._start)


class _NullSpan:
    """A reusable no-op context manager: the disabled-telemetry fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: Shared singleton returned by every disabled ``span()`` call.
NULL_SPAN = _NullSpan()


class ScopeProfiler:
    """Collects :class:`SpanStats` per scope name."""

    __slots__ = ("clock", "spans")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.spans: Dict[str, SpanStats] = {}

    def span(self, name: str) -> _Span:
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats(name)
        return _Span(self, stats)

    def hottest(self, top: int = 10) -> List[SpanStats]:
        return sorted(self.spans.values(), key=lambda s: -s.total_s)[:top]

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: self.spans[name].to_dict()
                for name in sorted(self.spans)}
