"""Cross-worker telemetry aggregation for the plan/execute frontier.

Parallel benchmark workers each observe their own slice of a sweep: a
:class:`~repro.obs.metrics.MetricRegistry` of simulated-latency histograms,
a :class:`~repro.obs.profiler.ScopeProfiler` span profile, and the
wall-clock cost of the simulations they ran.  Those observations come back
to the parent as plain dicts inside batch payloads (live instrument objects
never cross the process boundary); this module re-hydrates and merges them:

* :func:`registry_from_dict` rebuilds a ``MetricRegistry`` from its
  ``to_dict`` form — histogram buckets included, so merged quantiles are
  exact bucket-wise merges, not averages of averages;
* :func:`merge_profiles` folds span profiles (calls and total seconds add,
  peaks take the max);
* :class:`FrontierAggregator` accumulates everything across batches into a
  frontier-level summary — cache and trace hit rates, per-worker
  utilization, p50/p95 simulate latency, simulated ops/s — which the
  runner embeds in every ``BENCH_<runid>.json`` trajectory record and
  ``python -m repro.bench history`` surfaces.

Everything here runs in the parent at batch granularity (a handful of dict
merges per simulation), far from the engine hot loop.
"""

from typing import Dict, List, Optional

from repro.obs.metrics import DEFAULT_GROWTH, Histogram, MetricRegistry

__all__ = [
    "FRONTIER_SCHEMA",
    "FrontierAggregator",
    "merge_profiles",
    "registry_from_dict",
]

#: Version tag on the frontier summary embedded in trajectory records.
FRONTIER_SCHEMA = "repro.obs.frontier/1"


def registry_from_dict(payload: Dict) -> MetricRegistry:
    """Rebuild a :class:`MetricRegistry` from ``MetricRegistry.to_dict``.

    The inverse is exact for counters and gauges and bucket-exact for
    histograms (min/max/sum/zeros and every sparse bucket restored), so
    ``merge`` over rebuilt registries equals a merge over the live ones.
    """
    registry = MetricRegistry()
    for name, entry in payload.items():
        kind = entry.get("type")
        if kind == "counter":
            registry.counter(name).inc(entry.get("value", 0.0))
        elif kind == "gauge":
            registry.gauge(name).set(entry.get("value", 0.0))
        elif kind == "histogram":
            histogram = registry.histogram(
                name, growth=entry.get("growth", DEFAULT_GROWTH))
            _restore_histogram(histogram, entry)
        else:
            raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    return registry


def _restore_histogram(histogram: Histogram, entry: Dict) -> None:
    histogram.count = int(entry.get("count", 0))
    histogram.total = float(entry.get("sum", 0.0))
    histogram.zeros = int(entry.get("zeros", 0))
    if histogram.count:
        histogram.min = float(entry.get("min", 0.0))
        histogram.max = float(entry.get("max", 0.0))
    for index, n in entry.get("buckets", {}).items():
        histogram.buckets[int(index)] = int(n)


def merge_profiles(into: Dict[str, Dict], other: Dict[str, Dict]) -> Dict:
    """Fold one span-profile dict into another (calls/total add, peak max)."""
    for name, span in other.items():
        target = into.setdefault(
            name, {"calls": 0, "total_s": 0.0, "peak_s": 0.0})
        target["calls"] += span.get("calls", 0)
        target["total_s"] += span.get("total_s", 0.0)
        target["peak_s"] = max(target["peak_s"], span.get("peak_s", 0.0))
    return into


class FrontierAggregator:
    """Accumulates per-payload worker observations into one summary.

    The runner feeds it every executed batch: one :meth:`add_payload` per
    worker envelope (simulate duration, worker pid, optional telemetry
    snapshot) and one :meth:`add_batch` with the batch's parent-side wall
    time — the denominator for per-worker utilization.
    """

    def __init__(self):
        self.metrics = MetricRegistry()
        self.profile: Dict[str, Dict] = {}
        self.simulate_seconds = Histogram("frontier.simulate_seconds")
        self.workers: Dict[int, Dict[str, float]] = {}
        self.batches = 0
        self.batch_wall_s = 0.0
        self.telemetry_payloads = 0

    # Accumulation ------------------------------------------------------

    def add_payload(self, envelope: Dict) -> None:
        """Fold one worker envelope (see ``frontier._execute_payload``)."""
        worker = envelope.get("worker", {})
        pid = int(worker.get("pid", 0))
        dur = float(worker.get("dur_s", 0.0))
        self.simulate_seconds.record(dur)
        entry = self.workers.setdefault(pid, {"payloads": 0, "busy_s": 0.0})
        entry["payloads"] += 1
        entry["busy_s"] += dur
        telemetry = envelope.get("telemetry")
        if telemetry:
            self.telemetry_payloads += 1
            self.metrics.merge(registry_from_dict(
                telemetry.get("metrics", {})))
            merge_profiles(self.profile, telemetry.get("profile", {}))

    def add_batch(self, wall_s: float) -> None:
        self.batches += 1
        self.batch_wall_s += wall_s

    # Summary -----------------------------------------------------------

    def summary(self, accounting: Optional[Dict[str, float]] = None) -> Dict:
        """The frontier-level digest embedded in trajectory records.

        ``accounting`` is a :meth:`~repro.bench.runner.RunnerAccounting.
        snapshot` dict; when given, cache/trace hit rates and simulated
        ops/s are derived from it (the aggregator itself only sees executed
        payloads, never memo or disk hits).
        """
        latency = self.simulate_seconds
        out: Dict = {
            "schema": FRONTIER_SCHEMA,
            "batches": self.batches,
            "batch_wall_s": self.batch_wall_s,
            "simulate_latency_s": {
                "count": latency.count,
                "mean": latency.mean,
                "p50": latency.quantile(0.50),
                "p95": latency.quantile(0.95),
                "max": latency.max if latency.count else 0.0,
            },
            "workers": self._worker_summary(),
        }
        if accounting is not None:
            out["cache"] = self._cache_summary(accounting)
            out["traces"] = self._trace_summary(accounting)
            out["plan_cache"] = self._plan_summary(accounting)
            wall = accounting.get("sim_wall_seconds", 0.0)
            insts = accounting.get("instructions", 0.0)
            out["sim_ops_per_second"] = insts / wall if wall > 0 else 0.0
        if len(self.metrics):
            out["metrics"] = self.metrics.to_dict()
        if self.profile:
            out["profile"] = {name: dict(span)
                              for name, span in sorted(self.profile.items())}
        return out

    def _worker_summary(self) -> Dict[str, Dict[str, float]]:
        wall = self.batch_wall_s
        out = {}
        for pid in sorted(self.workers):
            entry = dict(self.workers[pid])
            entry["utilization"] = (entry["busy_s"] / wall) if wall > 0 else 0.0
            out[str(pid)] = entry
        return out

    @staticmethod
    def _cache_summary(accounting: Dict[str, float]) -> Dict[str, float]:
        memo = accounting.get("memo_hits", 0.0)
        disk = accounting.get("disk_hits", 0.0)
        sims = accounting.get("simulations", 0.0)
        served = memo + disk + sims
        return {
            "memo_hits": memo,
            "disk_hits": disk,
            "simulations": sims,
            "hit_rate": (memo + disk) / served if served else 0.0,
        }

    @staticmethod
    def _trace_summary(accounting: Dict[str, float]) -> Dict[str, float]:
        captures = accounting.get("trace_captures", 0.0)
        hits = accounting.get("trace_hits", 0.0)
        total = captures + hits
        return {
            "captures": captures,
            "hits": hits,
            "hit_rate": hits / total if total else 0.0,
        }

    @staticmethod
    def _plan_summary(accounting: Dict[str, float]) -> Dict[str, float]:
        """ColumnPlan compiles vs reuses across all executed runs.

        Affinity scheduling's whole point: sibling configs that land on the
        same worker turn plan misses (compiles) into hits, and shared-memory
        trace decodes into decode-memo hits.
        """
        hits = accounting.get("plan_hits", 0.0)
        misses = accounting.get("plan_misses", 0.0)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": accounting.get("plan_evictions", 0.0),
            "hit_rate": hits / total if total else 0.0,
            "trace_decodes": accounting.get("trace_decodes", 0.0),
            "trace_decode_hits": accounting.get("trace_decode_hits", 0.0),
        }
