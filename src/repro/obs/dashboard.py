"""Self-contained HTML dashboard over a benchmark sweep's observability.

``python -m repro.obs dashboard <dir>`` scans a directory (typically
``bench-history/``) for the three artifact kinds the bench stack emits —

* ``BENCH_*.json`` trajectory records (read as plain JSON: this module
  deliberately never imports :mod:`repro.bench`, keeping the obs layer
  dependency-free);
* ``EVENTS_*.jsonl`` / ``*.events.jsonl`` run ledgers
  (:func:`repro.obs.events.read_events`); and
* ``*.run.json`` per-run telemetry bundles —

and renders one static HTML file: headline stat tiles, per-experiment
timing bars, the memo/disk/simulated cache breakdown, a simulate-latency
histogram built from the ledger's raw ``simulate_end`` durations, the
simulated-throughput trajectory across records as an inline SVG sparkline,
and a table of telemetry bundles.  No external assets, no JavaScript: the
file opens anywhere, ships as a CI artifact, and respects
``prefers-color-scheme`` via CSS custom properties.
"""

import html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.events import read_events
from repro.util.fsio import atomic_write_text

__all__ = ["collect_sources", "render_html", "write_dashboard"]

#: Categorical palette, slots 1-3 (identity: memo / disk / simulated and
#: friends), per light/dark surface.  Values are the validated defaults
#: from the dataviz reference palette; identity is always doubled with a
#: direct label or table, never color alone.
_LIGHT = {"surface": "#fcfcfb", "ink": "#1f1f1e", "muted": "#6b6b68",
          "grid": "#e4e4e1", "c1": "#2a78d6", "c2": "#eb6834",
          "c3": "#1baf7a"}
_DARK = {"surface": "#1a1a19", "ink": "#ebebe9", "muted": "#9a9a96",
         "grid": "#333331", "c1": "#3987e5", "c2": "#d95926",
         "c3": "#199e70"}


def collect_sources(target) -> Dict:
    """Gather records, ledgers, and bundles under a directory.

    ``target`` may also be a single file (a ``.run.json`` bundle or an
    events JSONL); its parent directory is scanned so the dashboard always
    shows the full sweep context.
    """
    target = Path(target)
    directory = target if target.is_dir() else target.parent
    records: List[Dict] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue   # torn or foreign file: the dashboard shows the rest
        payload["_file"] = path.name
        records.append(payload)
    ledgers: List[Dict] = []
    seen = set()
    for pattern in ("EVENTS_*.jsonl", "*.events.jsonl"):
        for path in sorted(directory.glob(pattern)):
            if path in seen:
                continue
            seen.add(path)
            try:
                events = read_events(path)
            except (OSError, ValueError):
                continue
            ledgers.append({"file": path.name, "events": events})
    bundles: List[Dict] = []
    for path in sorted(directory.glob("*.run.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        payload["_file"] = path.name
        bundles.append(payload)
    return {"directory": directory, "records": records,
            "ledgers": ledgers, "bundles": bundles}


def write_dashboard(target, out=None) -> Path:
    """Render ``target``'s dashboard; returns the written HTML path."""
    sources = collect_sources(target)
    out = (Path(out) if out is not None
           else sources["directory"] / "dashboard.html")
    atomic_write_text(out, render_html(sources))
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _esc(value) -> str:
    return html.escape(str(value))


def _fmt(value: float) -> str:
    if value >= 10_000 or (0 < abs(value) < 0.01):
        return f"{value:.3g}"
    return f"{value:,.2f}".rstrip("0").rstrip(".")


def _css() -> str:
    def block(theme: Dict[str, str]) -> str:
        return "".join(f"--{k}:{v};" for k, v in theme.items())

    return f"""
:root {{ {block(_LIGHT)} }}
@media (prefers-color-scheme: dark) {{ :root {{ {block(_DARK)} }} }}
* {{ box-sizing: border-box; }}
body {{ margin: 2rem auto; max-width: 60rem; padding: 0 1rem;
       background: var(--surface); color: var(--ink);
       font: 14px/1.5 system-ui, sans-serif; }}
h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.05rem; margin-top: 2rem; }}
.muted {{ color: var(--muted); }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 0.75rem; }}
.tile {{ border: 1px solid var(--grid); border-radius: 6px;
        padding: 0.6rem 1rem; min-width: 9rem; }}
.tile b {{ display: block; font-size: 1.4rem; font-weight: 600; }}
.tile span {{ color: var(--muted); font-size: 0.85rem; }}
.bar-row {{ display: grid; grid-template-columns: 11rem 1fr 5.5rem;
           align-items: center; gap: 0.5rem; margin: 0.3rem 0; }}
.bar-label {{ text-align: right; color: var(--muted);
             overflow: hidden; text-overflow: ellipsis;
             white-space: nowrap; }}
.bar-track {{ display: flex; gap: 2px; height: 14px; }}
.bar-fill {{ border-radius: 0 4px 4px 0; min-width: 2px; }}
.bar-fill.first {{ border-radius: 4px; }}
.c1 {{ background: var(--c1); }} .c2 {{ background: var(--c2); }}
.c3 {{ background: var(--c3); }}
.legend {{ display: flex; gap: 1.2rem; margin: 0.5rem 0;
          color: var(--muted); font-size: 0.85rem; }}
.legend i {{ display: inline-block; width: 10px; height: 10px;
            border-radius: 3px; margin-right: 0.35rem; }}
.hist {{ display: flex; align-items: flex-end; gap: 2px; height: 90px;
        border-bottom: 1px solid var(--grid); max-width: 32rem; }}
.hist div {{ flex: 1; background: var(--c1); border-radius: 4px 4px 0 0;
            min-height: 1px; }}
.hist-x {{ display: flex; justify-content: space-between; max-width: 32rem;
          color: var(--muted); font-size: 0.8rem; }}
table {{ border-collapse: collapse; margin: 0.6rem 0; }}
th, td {{ text-align: left; padding: 0.25rem 0.9rem 0.25rem 0;
         border-bottom: 1px solid var(--grid); }}
th {{ color: var(--muted); font-weight: 500; }}
td.num, th.num {{ text-align: right; }}
svg text {{ fill: var(--muted); font-size: 10px; }}
""".strip()


def _stat_tiles(record: Dict) -> str:
    obs = record.get("observability") or {}
    totals = record.get("totals") or {}
    cache = obs.get("cache") or {}
    served = (cache.get("memo_hits", 0) + cache.get("disk_hits", 0)
              + cache.get("simulations", 0))
    tiles = [
        (f"{served:,.0f}", "requests served"),
        (f"{cache.get('hit_rate', 0.0):.0%}", "cache hit rate"),
        (f"{cache.get('simulations', totals.get('simulations', 0)):,.0f}",
         "simulations"),
        (f"{_fmt(obs.get('sim_ops_per_second', totals.get('sim_ops_per_second', 0.0)))}",
         "simulated ops/s"),
        (f"{totals.get('wall_seconds', 0.0):,.1f}s", "suite wall time"),
    ]
    body = "".join(f'<div class="tile"><b>{_esc(v)}</b>'
                   f'<span>{_esc(label)}</span></div>'
                   for v, label in tiles)
    return f'<div class="tiles">{body}</div>'


def _legend(entries: Sequence) -> str:
    return ('<div class="legend">'
            + "".join(f'<span><i class="{slot}"></i>{_esc(name)}</span>'
                      for slot, name in entries)
            + "</div>")


def _timing_bars(record: Dict) -> str:
    experiments = record.get("experiments") or []
    if not experiments:
        return '<p class="muted">no experiment records</p>'
    peak = max(e.get("wall_seconds", 0.0) for e in experiments) or 1.0
    rows = []
    for entry in experiments:
        wall = entry.get("wall_seconds", 0.0)
        width = max(100.0 * wall / peak, 0.5)
        rows.append(
            f'<div class="bar-row">'
            f'<span class="bar-label">{_esc(entry.get("name", "?"))}</span>'
            f'<span class="bar-track"><span class="bar-fill first c1" '
            f'style="width:{width:.1f}%"></span></span>'
            f'<span class="muted">{wall:,.2f}s</span></div>')
    return "".join(rows)


def _hit_rate_bars(record: Dict) -> str:
    experiments = record.get("experiments") or []
    if not experiments:
        return '<p class="muted">no experiment records</p>'
    parts = []
    for entry in experiments:
        memo = entry.get("memo_hits", 0.0)
        disk = entry.get("disk_hits", 0.0)
        sims = entry.get("simulations", 0.0)
        total = memo + disk + sims
        if total <= 0:
            continue
        segments = []
        first = True
        for value, slot in ((memo, "c1"), (disk, "c2"), (sims, "c3")):
            if value <= 0:
                continue
            cls = "bar-fill first" if first else "bar-fill"
            first = False
            segments.append(f'<span class="{cls} {slot}" '
                            f'style="width:{100.0 * value / total:.1f}%">'
                            f'</span>')
        parts.append(
            f'<div class="bar-row">'
            f'<span class="bar-label">{_esc(entry.get("name", "?"))}</span>'
            f'<span class="bar-track">{"".join(segments)}</span>'
            f'<span class="muted">{(memo + disk) / total:.0%} hit</span>'
            f'</div>')
    legend = _legend([("c1", "memo hits"), ("c2", "disk hits"),
                      ("c3", "simulated")])
    return legend + "".join(parts)


def _sweep_section(record: Dict) -> str:
    """Adaptive-sweep view: metric curve, threshold, refinement strip.

    The curve plots every evaluated grid point's metric against its grid
    position; the dashed line is the sweep's threshold, the marker the
    resolved crossover interval.  The strip below shows *which* points
    each refinement round touched (color cycles by round) — coarse rounds
    paint evenly, later rounds cluster around the crossover, which is the
    adaptive sampler's evaluation savings made visible.
    """
    sweep = record.get("sweep") or {}
    points = sweep.get("points") or []
    if len(points) < 2:
        return '<p class="muted">no sweep points in this record</p>'
    grid = max(sweep.get("grid_points", 0) - 1, 1)
    metrics = [p.get("metric", 0.0) for p in points]
    lo, hi = min(metrics), max(metrics)
    threshold = sweep.get("threshold", 0.0)
    lo, hi = min(lo, threshold), max(hi, threshold)
    span = (hi - lo) or 1.0
    width, height, pad, strip_h = 480, 120, 8, 14

    def x(index: float) -> float:
        return pad + (width - 2 * pad) * index / grid

    def y(metric: float) -> float:
        return pad + (height - strip_h - 2 * pad) * (1 - (metric - lo) / span)

    curve = " ".join(f"{x(p['index']):.1f},{y(p['metric']):.1f}"
                     for p in points)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="sweep metric curve '
        f'with refinement rounds">',
        f'<line x1="{pad}" y1="{y(threshold):.1f}" x2="{width - pad}" '
        f'y2="{y(threshold):.1f}" stroke="var(--muted)" '
        f'stroke-dasharray="4 3"/>',
        f'<polyline points="{curve}" fill="none" stroke="var(--c1)" '
        f'stroke-width="2"/>',
    ]
    crossover = sweep.get("crossover")
    if crossover:
        cx = x((crossover["below_index"] + crossover["above_index"]) / 2.0)
        parts.append(
            f'<line x1="{cx:.1f}" y1="{pad}" x2="{cx:.1f}" '
            f'y2="{height - strip_h - pad}" stroke="var(--c2)" '
            f'stroke-width="2"/>'
            f'<text x="{cx + 5:.0f}" y="{pad + 10}">crossover '
            f'{_fmt(crossover["below"])}&#8211;'
            f'{_fmt(crossover["above"])}</text>')
    strip_y = height - strip_h - 2
    for round_no, indices in enumerate(sweep.get("rounds_points") or []):
        slot = ("c1", "c2", "c3")[round_no % 3]
        for index in indices:
            # SVG needs fill, not the CSS background the bar classes set.
            parts.append(
                f'<rect x="{x(index) - 1.5:.1f}" y="{strip_y}" width="3" '
                f'height="{strip_h - 4}" fill="var(--{slot})" rx="1">'
                f'<title>round {round_no}</title></rect>')
    parts.append("</svg>")
    caption = (
        f'<p class="muted">{sweep.get("evaluated", 0)} of '
        f'{sweep.get("grid_points", 0)} grid points evaluated '
        f'({sweep.get("evaluated_fraction", 0.0):.0%}) over '
        f'{sweep.get("rounds", 0)} rounds &#8212; '
        f'{_fmt(sweep.get("points_per_second", 0.0))} points/s; '
        f'metric <code>{_esc(sweep.get("metric", "?"))}</code>, '
        f'threshold {_fmt(threshold)}</p>')
    legend = _legend([("c1", "round 0, 3, …"), ("c2", "round 1, 4, …"),
                      ("c3", "round 2, 5, …")])
    return "".join(parts) + caption + legend


def _latency_histogram(ledgers: List[Dict], bins: int = 14) -> str:
    durations = [float(e.get("dur_s", 0.0))
                 for ledger in ledgers for e in ledger["events"]
                 if e.get("kind") == "simulate_end"]
    if not durations:
        return ('<p class="muted">no simulate events in the ledger '
                '(fully warm run, or no EVENTS_*.jsonl captured)</p>')
    lo, hi = min(durations), max(durations)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for dur in durations:
        counts[min(int((dur - lo) / span * bins), bins - 1)] += 1
    peak = max(counts)
    bars = "".join(
        f'<div style="height:{max(100.0 * n / peak, 1.0):.0f}%" '
        f'title="{n} runs"></div>' for n in counts)
    return (f'<div class="hist">{bars}</div>'
            f'<div class="hist-x"><span>{lo:.3f}s</span>'
            f'<span>{len(durations)} simulate spans</span>'
            f'<span>{hi:.3f}s</span></div>')


def _sparkline(records: List[Dict]) -> str:
    series = [(r.get("runid", r.get("_file", "?")),
               (r.get("totals") or {}).get("sim_ops_per_second", 0.0))
              for r in records]
    series = [(runid, ops) for runid, ops in series if ops > 0]
    if len(series) < 2:
        return ('<p class="muted">fewer than two records with simulation '
                'throughput — run the suite cold to extend the series</p>')
    width, height, pad = 480, 72, 6
    peak = max(ops for _, ops in series)
    step = (width - 2 * pad) / (len(series) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (height - 2 * pad) * ops / peak:.1f}"
        for i, (_, ops) in enumerate(series))
    last_x = pad + (len(series) - 1) * step
    last_y = height - pad - (height - 2 * pad) * series[-1][1] / peak
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="simulated ops per second across records">'
        f'<polyline points="{points}" fill="none" stroke="var(--c1)" '
        f'stroke-width="2"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="4" '
        f'fill="var(--c1)" stroke="var(--surface)" stroke-width="2"/>'
        f'<text x="{last_x - 4:.0f}" y="{max(last_y - 8, 10):.0f}" '
        f'text-anchor="end">{_fmt(series[-1][1])} ops/s</text>'
        f'</svg>')


def _records_table(records: List[Dict]) -> str:
    rows = []
    for record in records:
        totals = record.get("totals") or {}
        obs = record.get("observability") or {}
        cache = obs.get("cache") or {}
        rows.append(
            "<tr>"
            f"<td>{_esc(record.get('runid', record.get('_file', '?')))}</td>"
            f"<td class='num'>{record.get('jobs', 1)}</td>"
            f"<td class='num'>{totals.get('simulations', 0):,.0f}</td>"
            f"<td class='num'>{cache.get('hit_rate', 0.0):.0%}</td>"
            f"<td class='num'>{totals.get('wall_seconds', 0.0):,.2f}</td>"
            f"<td class='num'>"
            f"{_fmt(totals.get('sim_ops_per_second', 0.0))}</td>"
            "</tr>")
    return ("<table><thead><tr><th>runid</th><th class='num'>jobs</th>"
            "<th class='num'>sims</th><th class='num'>hit rate</th>"
            "<th class='num'>wall s</th><th class='num'>sim ops/s</th>"
            "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>")


def _bundles_table(bundles: List[Dict]) -> str:
    if not bundles:
        return ('<p class="muted">no *.run.json telemetry bundles here — '
                'run with <code>--telemetry</code> to produce them</p>')
    rows = []
    for bundle in bundles:
        result = bundle.get("result") or {}
        rows.append(
            "<tr>"
            f"<td>{_esc(bundle.get('_file', '?'))}</td>"
            f"<td>{_esc(result.get('workload', '?'))}</td>"
            f"<td>{_esc(result.get('policy', '?'))}</td>"
            f"<td class='num'>{_fmt(result.get('cycles', 0.0))}</td>"
            f"<td class='num'>{result.get('instructions', 0):,}</td>"
            "</tr>")
    return ("<table><thead><tr><th>bundle</th><th>workload</th>"
            "<th>policy</th><th class='num'>cycles</th>"
            "<th class='num'>instructions</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>")


def render_html(sources: Dict) -> str:
    records = sources["records"]
    ledgers = sources["ledgers"]
    latest: Optional[Dict] = records[-1] if records else None
    title = f"bench dashboard — {sources['directory'].name}"
    sections = [f"<h1>{_esc(title)}</h1>"]
    if latest is None:
        sections.append('<p class="muted">no BENCH_*.json records found; '
                        'run <code>python -m repro.bench run smoke</code> '
                        'first</p>')
    else:
        sections.append(f'<p class="muted">latest record: '
                        f'{_esc(latest.get("_file", "?"))}</p>')
        sections.append(_stat_tiles(latest))
        sections.append("<h2>Per-experiment wall time</h2>")
        sections.append(_timing_bars(latest))
        sections.append("<h2>Cache breakdown per experiment</h2>")
        sections.append(_hit_rate_bars(latest))
        # Newest sweep-bearing record (the latest record may be a plain
        # run that followed a sweep — the sweep view stays useful).
        for record in reversed(records):
            if record.get("sweep"):
                sections.append("<h2>Adaptive sweep &#8212; "
                                f"{_esc(record['sweep'].get('name', '?'))}"
                                "</h2>")
                sections.append(_sweep_section(record))
                break
    sections.append("<h2>Simulate latency (from the run ledger)</h2>")
    sections.append(_latency_histogram(ledgers))
    sections.append("<h2>Simulated throughput across records</h2>")
    sections.append(_sparkline(records))
    if records:
        sections.append("<h2>All records</h2>")
        sections.append(_records_table(records))
    sections.append("<h2>Telemetry bundles</h2>")
    sections.append(_bundles_table(sources["bundles"]))
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">"
            f"<title>{_esc(title)}</title>"
            f"<style>{_css()}</style></head><body>"
            + "\n".join(sections) + "</body></html>\n")
