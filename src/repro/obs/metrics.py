"""Typed metric instruments: counters, gauges, and log-scaled histograms.

The flat :class:`~repro.sim.stats.Stats` registry the hardware models write
into is intentionally dumb: every value is a float and aggregation is
addition.  That is the right model for event *counts*, but the telemetry
layer needs two things Stats cannot express:

* an explicit counter/gauge distinction, so merging or scaling a metric set
  never sums last-write values such as ``runtime.cycles`` (the hazard
  ``Stats`` itself now guards against — see ``Stats.set``);
* *distributions*: a mean PEI latency hides exactly the tail behavior the
  locality monitor's warmup and the balanced-dispatch reaction create, so
  latencies and queue depths are recorded into log-scaled histograms with
  cheap p50/p95/p99 extraction.

Everything here is stdlib-only and deterministic: instruments observe the
simulation, they never influence it.
"""

import math
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]

#: Default histogram bucket growth: 2**(1/4) per bucket, i.e. ~19% relative
#: resolution and four buckets per octave — enough for p99 on latencies that
#: span five orders of magnitude, in a few dozen sparse buckets.
DEFAULT_GROWTH = 2.0 ** 0.25


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, float]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value (e.g. a utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        # Merging gauges from parallel sources has no single right answer;
        # max is the conservative choice for the runtimes/depths we track.
        self.value = max(self.value, other.value)

    def to_dict(self) -> Dict[str, float]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A sparse log-scaled histogram with quantile extraction.

    Values are assigned to geometric buckets ``[growth**i, growth**(i+1))``;
    non-positive values (a zero-cycle lock wait is common) land in a
    dedicated zero bucket.  Quantiles are estimated by linear interpolation
    inside the covering bucket, clamped to the observed min/max, so the
    relative error is bounded by the bucket growth factor.
    """

    __slots__ = ("name", "growth", "_log_growth", "buckets", "zeros",
                 "count", "total", "min", "max")

    def __init__(self, name: str, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError(f"bucket growth must exceed 1, got {growth}")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = int(math.floor(math.log(value) / self._log_growth))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    # Quantiles ---------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of observed values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        if rank <= self.zeros:
            # Inside the zero bucket: everything there is <= 0; report the
            # observed minimum (0 for pure zero-latency observations).
            return min(self.min, 0.0)
        seen = float(self.zeros)
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if rank <= seen + in_bucket:
                low = self.growth ** index
                high = self.growth ** (index + 1)
                fraction = (rank - seen) / in_bucket
                estimate = low + (high - low) * fraction
                return min(max(estimate, self.min), self.max)
            seen += in_bucket
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    # Aggregation -------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        if not math.isclose(self.growth, other.growth):
            raise ValueError(
                f"cannot merge histograms with growth {self.growth} and "
                f"{other.growth}")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "growth": self.growth,
            "zeros": self.zeros,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }
        out.update(self.percentiles())
        return out


class MetricRegistry:
    """A namespace of typed instruments, created on first use.

    The registry is the typed big sibling of :class:`~repro.sim.stats.Stats`:
    one flat name space, but each name is permanently a counter, a gauge, or
    a histogram, and aggregation respects the type (counters add, gauges take
    the max, histograms merge bucket-wise).
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # Instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, growth: Optional[float] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, growth if growth is not None else DEFAULT_GROWTH)
        return instrument

    def _check_free(self, name: str, own: Dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} already registered with a different type")

    # Convenience write paths (the component-facing hook API) ----------

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    # Aggregation and export -------------------------------------------

    def merge(self, other: "MetricRegistry") -> None:
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name, growth=histogram.growth).merge(histogram)

    def items(self) -> Iterator[Tuple[str, object]]:
        merged: Dict[str, object] = {}
        merged.update(self._counters)
        merged.update(self._gauges)
        merged.update(self._histograms)
        return iter(sorted(merged.items()))

    def to_dict(self) -> Dict[str, Dict]:
        return {name: instrument.to_dict() for name, instrument in self.items()}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return (name in self._counters or name in self._gauges
                or name in self._histograms)
