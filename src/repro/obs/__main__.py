"""Command-line reports over telemetry bundles and sweep directories.

Usage::

    python -m repro.obs report out/pagerank_locality.run.json
    python -m repro.obs report out/pagerank_locality.run.json --json
    python -m repro.obs dashboard bench-history
    python -m repro.obs merge-trace telemetry-out -o merged.trace.json

``report`` reads a ``<stem>.run.json`` bundle written by
:meth:`repro.obs.telemetry.Telemetry.write` (or a bare ``RunResult`` JSON
file) and prints the run's headline metrics, the latency/queue histograms
with p50/p95/p99, the simulator's own span profile, and pointers to the
interval time series and Chrome trace files.  Missing, torn, or non-JSON
bundles exit with status 2 and a one-line diagnosis.

``dashboard`` renders a directory of ``BENCH_*.json`` records,
``EVENTS_*.jsonl`` run ledgers, and ``*.run.json`` bundles into one
self-contained HTML file (see :mod:`repro.obs.dashboard`).  ``merge-trace``
stitches every ``*.trace.json`` in a directory into a single Perfetto
trace with one pid namespace per source file, appending a wall-clock
frontier track when a run ledger is present.
"""

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------


def _fmt(value: float) -> str:
    if value >= 10_000 or (0 < abs(value) < 0.01):
        return f"{value:.3g}"
    return f"{value:,.2f}".rstrip("0").rstrip(".")


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(r) for r in rows]
    return "\n".join(out)


def _result_header(result: Dict) -> str:
    cycles = result.get("cycles", 0.0)
    insts = result.get("instructions", 0)
    per_core = result.get("per_core_instructions", [])
    ipc = (sum(i / cycles for i in per_core) if cycles else 0.0)
    stats = result.get("stats", {})
    host = stats.get("pei.host_executed", 0.0)
    mem = stats.get("pei.mem_executed", 0.0)
    pim_fraction = mem / (host + mem) if host + mem else 0.0
    lines = [
        f"run      {result.get('workload', '?')} / {result.get('policy', '?')}",
        f"cycles   {_fmt(cycles)}    instructions {insts:,}    "
        f"IPC(sum) {_fmt(ipc)}",
        f"PEIs     {_fmt(host + mem)} ({_fmt(100 * pim_fraction)}% memory-side)",
    ]
    return "\n".join(lines)


def _histogram_rows(metrics: Dict) -> List[List[str]]:
    rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        if entry.get("type") != "histogram":
            continue
        rows.append([
            name, f"{entry.get('count', 0):,}", _fmt(entry.get("mean", 0.0)),
            _fmt(entry.get("p50", 0.0)), _fmt(entry.get("p95", 0.0)),
            _fmt(entry.get("p99", 0.0)), _fmt(entry.get("max", 0.0)),
        ])
    return rows


def _profile_rows(profile: Dict) -> List[List[str]]:
    items = sorted(profile.items(), key=lambda kv: -kv[1].get("total_s", 0.0))
    return [[name, f"{entry.get('calls', 0):,}",
             f"{entry.get('total_s', 0.0):.4f}",
             f"{1e6 * entry.get('total_s', 0.0) / entry['calls']:.2f}"
             if entry.get("calls") else "-"]
            for name, entry in items]


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def _load_bundle(path: Path) -> Dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise json.JSONDecodeError("bundle is not a JSON object", "", 0)
    if "telemetry" in payload or "result" in payload:
        return payload
    # A bare RunResult JSON: wrap it so the report degrades gracefully.
    return {"result": payload, "telemetry": None, "files": {}}


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.run_json)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    try:
        bundle = _load_bundle(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not a valid telemetry bundle "
              f"(truncated or non-JSON: {exc.msg}, "
              f"line {exc.lineno})", file=sys.stderr)
        return 2
    if args.json:
        json.dump(bundle, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    sections = []
    result = bundle.get("result")
    if result:
        sections.append(_result_header(result))
    telemetry: Optional[Dict] = bundle.get("telemetry")
    if telemetry is None:
        sections.append("(no telemetry section — run with telemetry enabled, "
                        "e.g. `python -m repro.bench run fig10 --telemetry`)")
    else:
        metrics = telemetry.get("metrics", {})
        histogram_rows = _histogram_rows(metrics)
        if histogram_rows:
            sections.append("latency / queue-depth histograms (cycles):\n"
                            + _table(["histogram", "count", "mean", "p50",
                                      "p95", "p99", "max"], histogram_rows))
        counters = [[name, _fmt(entry.get("value", 0.0))]
                    for name, entry in sorted(metrics.items())
                    if entry.get("type") == "counter"]
        if counters:
            sections.append("counters:\n" + _table(["counter", "value"],
                                                   counters))
        profile = telemetry.get("profile", {})
        if profile:
            sections.append("simulator span profile (wall time):\n"
                            + _table(["span", "calls", "total s", "us/call"],
                                     _profile_rows(profile)))
        intervals = telemetry.get("intervals", {})
        trace = telemetry.get("trace", {})
        files = bundle.get("files", {})
        sections.append(
            f"intervals  {intervals.get('count', 0)} samples every "
            f"{_fmt(intervals.get('interval_cycles', 0.0))} cycles"
            + (f"  -> {files['intervals']}" if files.get("intervals") else "")
        )
        sections.append(
            f"trace      {trace.get('events', 0)} events"
            f" ({trace.get('dropped', 0)} dropped)"
            + (f"  -> {files['trace']}  (load in Perfetto / chrome://tracing)"
               if files.get("trace") else "")
        )
    print("\n\n".join(sections))
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import write_dashboard

    target = Path(args.target)
    if not target.exists():
        print(f"error: no such file or directory: {target}", file=sys.stderr)
        return 2
    out = write_dashboard(target, out=args.out)
    print(f"dashboard -> {out}")
    return 0


def _cmd_merge_trace(args: argparse.Namespace) -> int:
    from repro.obs.events import read_events
    from repro.obs.trace_export import ledger_to_trace, merge_chrome_traces
    from repro.util.fsio import atomic_write_json

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"error: not a directory: {directory}", file=sys.stderr)
        return 2
    paths = sorted(directory.glob("*.trace.json"))
    traces: List[Dict] = []
    labels: List[str] = []
    for path in paths:
        try:
            traces.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        labels.append(path.name[:-len(".trace.json")])
    if not traces:
        print(f"error: no readable *.trace.json under {directory}",
              file=sys.stderr)
        return 2
    merged = merge_chrome_traces(traces, labels=labels)
    ledger_paths = (sorted(directory.glob("EVENTS_*.jsonl"))
                    + sorted(directory.glob("*.events.jsonl")))
    if ledger_paths:
        # The frontier track uses a different clock (harness wall time vs
        # simulated cycles); it rides along for the overview, clearly named.
        frontier = ledger_to_trace(read_events(ledger_paths[-1]))
        merged["traceEvents"] += frontier["traceEvents"]
        merged["otherData"]["frontier_ledger"] = ledger_paths[-1].name
    out = (Path(args.out) if args.out is not None
           else directory / "merged.trace.json")
    atomic_write_json(out, merged, sort_keys=False)
    print(f"merged trace ({len(traces)} sources"
          + (", + frontier ledger track" if ledger_paths else "")
          + f") -> {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Reports over telemetry bundles written by Telemetry.write.")
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="summarize one <stem>.run.json bundle")
    report.add_argument("run_json", help="path to a .run.json telemetry bundle "
                        "(or a bare RunResult JSON)")
    report.add_argument("--json", action="store_true",
                        help="dump the raw bundle as JSON instead of a table")
    report.set_defaults(func=_cmd_report)
    dashboard = sub.add_parser(
        "dashboard", help="render a sweep directory as one static HTML page")
    dashboard.add_argument("target", help="history/telemetry directory (or a "
                           "file in it, e.g. a .run.json bundle)")
    dashboard.add_argument("-o", "--out", default=None, metavar="FILE",
                           help="output path (default: <dir>/dashboard.html)")
    dashboard.set_defaults(func=_cmd_dashboard)
    merge = sub.add_parser(
        "merge-trace", help="stitch every *.trace.json in a directory into "
        "one collision-free Perfetto trace")
    merge.add_argument("directory", help="directory holding *.trace.json "
                       "exports (and optionally a run-ledger JSONL)")
    merge.add_argument("-o", "--out", default=None, metavar="FILE",
                       help="output path (default: <dir>/merged.trace.json)")
    merge.set_defaults(func=_cmd_merge_trace)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
