"""BENCH trajectory records: the benchmark suite's own perf history.

Every ``python -m repro.bench run`` invocation emits one
``BENCH_<runid>.json`` file recording, per experiment and in total, the
harness's own performance: wall-clock, simulations executed vs served from
the memo/disk cache, instructions simulated and the resulting simulated
ops/sec.  Accumulated over time (CI uploads the file as an artifact) these
records are the perf trajectory of the experiment pipeline itself — the
series that shows whether runner changes made regeneration faster.

Format (all times in seconds, all counters cumulative over the record's
scope)::

    {
      "schema": "repro.bench.trajectory/1",
      "runid": "20260806T101500-1234",
      "jobs": 2,
      "cache": {"enabled": true, "dir": ".bench_cache", ...counters},
      "settings": {"max_ops_per_thread": 8000, "n_mixes": 24, "seed": 42},
      "experiments": [
        {"name": "fig10", "wall_seconds": 1.9, "simulations": 12,
         "memo_hits": 4, "disk_hits": 0, "instructions": 3.1e6,
         "sim_wall_seconds": 1.7, "sim_ops_per_second": 1.8e6}, ...
      ],
      "totals": { ...same fields, summed... }
    }
"""

import itertools
import json
import os
import time
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.cache import atomic_write_json

__all__ = ["BenchTrajectory", "compare_engine", "format_observability",
           "format_sweep", "latest_record", "load_records", "new_runid"]

SCHEMA = "repro.bench.trajectory/1"

#: Fields accumulated per experiment and in the totals block.
_COUNTER_FIELDS = ("wall_seconds", "simulations", "memo_hits", "disk_hits",
                   "instructions", "sim_wall_seconds", "trace_captures",
                   "trace_hits", "plan_hits", "plan_misses", "plan_evictions",
                   "trace_decodes", "trace_decode_hits")

#: Relative engine-throughput drop (vs the best prior record) that
#: ``history --compare`` treats as a regression.
ENGINE_REGRESSION_THRESHOLD = 0.20


_RUNID_SEQ = itertools.count()


def new_runid() -> str:
    """A sortable, collision-resistant id: timestamp + pid + sequence.

    The per-process sequence keeps back-to-back invocations in one
    process (a cold sweep and its warm re-run can share a wall-clock
    second) from overwriting each other's records.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S")
    return f"{stamp}-{os.getpid()}-{next(_RUNID_SEQ)}"


def _with_throughput(record: Dict) -> Dict:
    wall = record.get("sim_wall_seconds", 0.0)
    insts = record.get("instructions", 0.0)
    record["sim_ops_per_second"] = insts / wall if wall > 0 else 0.0
    return record


class BenchTrajectory:
    """Accumulates per-experiment perf records for one suite invocation."""

    def __init__(self, runid: Optional[str] = None, jobs: int = 1,
                 cache_info: Optional[Dict] = None,
                 settings: Optional[Dict] = None):
        self.runid = runid if runid is not None else new_runid()
        self.jobs = jobs
        self.cache_info = dict(cache_info) if cache_info is not None else {}
        self.settings = dict(settings) if settings is not None else {}
        self.experiments: List[Dict] = []
        #: Engine microbenchmark measurement for this invocation
        #: (:func:`repro.bench.microbench.engine_ops_per_second` output).
        self.engine: Dict = {}
        #: Frontier observability summary for this invocation
        #: (:func:`repro.bench.runner.frontier_summary` output, plus the
        #: run-ledger event counts when a ledger was enabled).
        self.observability: Dict = {}
        #: Sweep report for ``python -m repro.bench sweep`` invocations
        #: (:mod:`repro.bench.sweep` report dict: grid size, points
        #: evaluated, rounds, crossover, points/sec).  Empty for plain
        #: ``run`` records; the schema stays /1 — the block is additive.
        self.sweep: Dict = {}

    def record(self, name: str, wall_seconds: float,
               before: Dict[str, float], after: Dict[str, float]) -> Dict:
        """Append one experiment's record from accounting snapshots."""
        entry: Dict = {"name": name, "wall_seconds": wall_seconds}
        for key in sorted(set(before) | set(after)):
            entry[key] = after.get(key, 0.0) - before.get(key, 0.0)
        entry = _with_throughput(entry)
        self.experiments.append(entry)
        return entry

    def payload(self) -> Dict:
        totals: Dict = {}
        for field_name in _COUNTER_FIELDS:
            totals[field_name] = sum(e.get(field_name, 0.0)
                                     for e in self.experiments)
        return {
            "schema": SCHEMA,
            "runid": self.runid,
            "jobs": self.jobs,
            "cache": self.cache_info,
            "settings": self.settings,
            "engine": self.engine,
            "observability": self.observability,
            "sweep": self.sweep,
            "experiments": self.experiments,
            "totals": _with_throughput(totals),
        }

    def write(self, out_dir) -> Path:
        out_dir = Path(out_dir)
        path = out_dir / f"BENCH_{self.runid}.json"
        # Atomic publish: a run killed mid-write must never leave a torn
        # trajectory record for `history --compare` to trip over.
        atomic_write_json(path, self.payload(), indent=2)
        return path


def load_records(history_dir) -> List[Tuple[Path, Dict]]:
    """All ``BENCH_*.json`` records in a directory, oldest first.

    Runids are timestamp-prefixed, so lexicographic filename order is
    chronological order.
    """
    history_dir = Path(history_dir)
    records = []
    for path in sorted(history_dir.glob("BENCH_*.json")):
        # A single unreadable record (half-downloaded CI artifact, torn
        # copy) must not kill `history --compare` for the whole series:
        # skip it with a warning and keep the readable ones.
        try:
            with open(path, "r", encoding="utf-8") as fh:
                records.append((path, json.load(fh)))
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(f"skipping unreadable bench record {path}: {exc}",
                          stacklevel=2)
    return records


def latest_record(history_dir) -> Optional[Tuple[Path, Dict]]:
    records = load_records(history_dir)
    return records[-1] if records else None


def compare_engine(records: List[Tuple[Path, Dict]],
                   threshold: float = ENGINE_REGRESSION_THRESHOLD,
                   ) -> Tuple[bool, str]:
    """Flag engine-throughput regressions in a record series.

    Compares the newest record's ``engine.ops_per_second`` against the
    *best* earlier record (minimum-of-rounds measurements regress by
    slowing down, not by losing a lucky draw).  Returns ``(ok, message)``;
    ``ok`` is False when the newest throughput is more than ``threshold``
    below the prior best.  Series with fewer than two engine-bearing
    records vacuously pass — there is nothing to compare against.
    """
    bearing = [(path, record) for path, record in records
               if record.get("engine", {}).get("ops_per_second")]
    if len(bearing) < 2:
        return True, (f"engine-compare: skipped "
                      f"({len(bearing)} record(s) with engine data; need 2)")
    newest_path, newest = bearing[-1]
    best_path, best = max(bearing[:-1],
                          key=lambda pr: pr[1]["engine"]["ops_per_second"])
    current = newest["engine"]["ops_per_second"]
    reference = best["engine"]["ops_per_second"]
    drop = 1.0 - current / reference
    detail = (f"{newest_path.name}: {current:,.0f} engine ops/s vs best "
              f"{reference:,.0f} ({best_path.name}); "
              f"change {-drop:+.1%}, threshold -{threshold:.0%}")
    if drop > threshold:
        return False, f"ENGINE REGRESSION: {detail}"
    return True, f"engine-compare OK: {detail}"


def format_observability(record: Dict) -> List[str]:
    """Human-readable lines for a record's frontier-observability block.

    Empty list when the record predates the block (schema stays /1 — the
    block is additive) or was written with observability fully disabled.
    """
    obs = record.get("observability") or {}
    if not obs:
        return []
    lines: List[str] = []
    cache = obs.get("cache")
    if cache:
        lines.append(
            f"  cache: {cache['hit_rate']:.0%} hit rate "
            f"({cache['memo_hits']} memo + {cache['disk_hits']} disk, "
            f"{cache['simulations']} simulated)")
    traces = obs.get("traces")
    if traces:
        lines.append(f"  traces: {traces['captures']} captured, "
                     f"{traces['hits']} replayed "
                     f"({traces['hit_rate']:.0%} hit rate)")
    plan = obs.get("plan_cache")
    if plan and (plan.get("hits") or plan.get("misses")):
        lines.append(
            f"  plan cache: {plan['hits']:.0f} hits, "
            f"{plan['misses']:.0f} compiles, "
            f"{plan.get('evictions', 0.0):.0f} evictions "
            f"({plan['hit_rate']:.0%} hit rate); "
            f"trace decodes {plan.get('trace_decodes', 0.0):.0f} "
            f"(+{plan.get('trace_decode_hits', 0.0):.0f} memoized)")
    latency = obs.get("simulate_latency_s")
    if latency and latency.get("count"):
        lines.append(
            f"  simulate latency: p50 {latency['p50']:.3f}s "
            f"p95 {latency['p95']:.3f}s max {latency['max']:.3f}s "
            f"({latency['count']} runs)")
    if obs.get("sim_ops_per_second"):
        lines.append(f"  simulated ops/s: {obs['sim_ops_per_second']:,.0f}")
    workers = obs.get("workers") or {}
    if workers:
        # JSON round-trips pid keys as *strings*; sort numerically so pid
        # 9 prints before pid 10.  (repro.obs.aggregate sorts the int pids
        # before stringifying and repro.obs.dashboard never orders worker
        # maps, so this was the only string-keyed sort.)
        parts = [f"pid {pid}: {w['payloads']} runs, "
                 f"{w.get('utilization', 0.0):.0%} busy"
                 for pid, w in sorted(workers.items(),
                                      key=lambda kv: int(kv[0]))]
        lines.append("  workers: " + "; ".join(parts))
    events = obs.get("events")
    if events:
        total = sum(events.values())
        lines.append(f"  ledger: {total} events "
                     f"({len(events)} kinds)")
    return lines


def format_sweep(record: Dict) -> List[str]:
    """Human-readable lines for a record's sweep block (empty when absent).

    ``points_per_second`` is the sweep's end-to-end throughput — grid
    points evaluated per second of sweep wall time (cache-served points
    included, simulated or not) — the headline number for comparing
    sweep-harness changes across records.
    """
    sweep = record.get("sweep") or {}
    if not sweep:
        return []
    lines = [
        f"  sweep {sweep.get('name', '?')}: "
        f"{sweep.get('evaluated', 0)}/{sweep.get('grid_points', 0)} points "
        f"evaluated ({sweep.get('evaluated_fraction', 0.0):.0%}) over "
        f"{sweep.get('rounds', 0)} round(s), "
        f"{sweep.get('simulated', 0)} simulated",
        f"  sweep throughput: {sweep.get('points_per_second', 0.0):,.1f} "
        f"points/s ({sweep.get('wall_seconds', 0.0):.2f}s wall)",
    ]
    crossover = sweep.get("crossover")
    if crossover:
        lines.append(
            f"  crossover: {sweep.get('metric', 'metric')} crosses "
            f"{sweep.get('threshold', 0.0):g} between "
            f"{crossover['below']:g} and {crossover['above']:g}")
    else:
        lines.append("  crossover: not found on this grid")
    return lines


def settings_dict(settings) -> Dict:
    """JSON form of a BenchSettings (kept here to avoid a runner import)."""
    return asdict(settings)
