"""Engine microbenchmark: the simulator's own ops/sec, measured one way.

One synthetic workload (:class:`EngineMicroload`, an even mix of PEIs,
loads and compute over a 1 MiB footprint) and one measurement protocol
(:func:`engine_ops_per_second`: capture once, replay N rounds, take the
*minimum* wall time) shared by every consumer that cares about harness
throughput:

* ``benchmarks/test_simulator_microbench.py`` (pytest-benchmark timing);
* ``python -m repro.bench run`` — every trajectory record embeds the
  measurement, so ``python -m repro.bench history --compare`` can flag
  engine-throughput regressions against earlier records; and
* the CI ``perf-smoke`` job, which runs exactly that pair.

Minimum-of-rounds is deliberate: on a noisy box the distribution's left
edge tracks the code's cost, the right edge tracks the machine's load.
"""

import time
from typing import Dict, Optional

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.cpu.trace import CompiledTrace, Compute, Load, Pei, capture_trace
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.base import Workload

__all__ = ["EngineMicroload", "capture_engine_trace", "engine_ops_per_second"]


class EngineMicroload(Workload):
    """Mixed PEI/load/compute stream with a cache-straddling footprint."""

    name = "engine-micro"

    def __init__(self, n_ops: int = 4000):
        super().__init__()
        self.n_ops = n_ops

    def prepare(self, space):
        self.space = space
        self.region = space.alloc("data", 1 << 20)

    def make_threads(self, n_threads):
        def thread(t):
            base = self.region.base
            for i in range(self.n_ops):
                addr = base + ((i * 2654435761 + t) % (1 << 20)) // 64 * 64
                if i % 3 == 0:
                    yield Pei(FP_ADD, addr)
                elif i % 3 == 1:
                    yield Load(addr)
                else:
                    yield Compute(4)
        return [thread(t) for t in range(n_threads)]


def capture_engine_trace(n_ops: int = 4000) -> CompiledTrace:
    """The microload compiled for the tiny config (capture cost excluded
    from every measurement round)."""
    config = tiny_config()
    return capture_trace(EngineMicroload(n_ops), n_threads=config.n_cores,
                         page_size=config.page_size)


def engine_ops_per_second(
    rounds: int = 3,
    n_ops: int = 4000,
    trace: Optional[CompiledTrace] = None,
    engine: str = "auto",
) -> Dict[str, float]:
    """Measure engine replay throughput under the locality-aware policy.

    Returns ``{"ops_per_second", "ms_per_run", "instructions", "rounds"}``
    where ``ops_per_second`` is simulated instructions retired per
    wall-second over the best of ``rounds`` replays.  ``engine`` picks the
    replay engine (``"auto"``/``"scalar"``/``"columnar"``) so regressions
    can be localized; the minimum-of-rounds protocol keeps the columnar
    plan compilation (a one-time cost, cached across rounds) out of the
    reported figure, matching how sweeps amortize it.
    """
    if trace is None:
        trace = capture_engine_trace(n_ops)
    best = float("inf")
    instructions = 0.0
    for _ in range(rounds):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        t0 = time.perf_counter()  # simlint: ignore[SIM001] -- measures the simulator's own host cost; never feeds simulated time
        result = system.run(trace, engine=engine)
        elapsed = time.perf_counter() - t0  # simlint: ignore[SIM001] -- measures the simulator's own host cost; never feeds simulated time
        instructions = result.instructions
        if elapsed < best:
            best = elapsed
    return {
        "ops_per_second": instructions / best if best > 0 else 0.0,
        "ms_per_run": best * 1000.0,
        "instructions": instructions,
        "rounds": rounds,
    }
