"""The plan/execute frontier: declarative run requests and their execution.

The paper's evaluation is a large matrix of *independent* simulations —
Figs. 6, 7 and 12 share runs across 10 workloads x sizes x policies — so the
natural unit of work is a :class:`RunRequest`: a frozen, picklable, fully
deterministic description of one simulation point (workload spec(s), dispatch
policy, machine config, operation cap).  Figure scripts build their whole
frontier of requests up front and submit the batch; the backend then

* executes independent points across processes (:func:`run_batch` with
  ``jobs > 1`` uses a ``ProcessPoolExecutor``), and
* merges results deterministically — results come back keyed in request
  order, and because every request pins its seeds and caps, parallel
  execution is bit-identical to serial execution (``make determinism``
  checks the underlying engine; ``tests/bench/test_frontier.py`` checks the
  backend).

Requests also carry a stable content fingerprint (:meth:`RunRequest.
fingerprint`) that keys the on-disk result cache (:mod:`repro.bench.cache`).

This module is deliberately free of runner policy (memoization, telemetry
globals, accounting) — that lives in :mod:`repro.bench.runner`, which layers
caching over these primitives.
"""

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.shm import TraceHandle, attach_trace, decode_counters, \
    publish_traces, unlink_segments
from repro.core.dispatch import DispatchPolicy
from repro.obs.events import worker_event
from repro.obs.telemetry import Telemetry, bundle_stem
from repro.system.config import SystemConfig, scaled_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.base import Workload
from repro.workloads.multiprog import MultiprogrammedWorkload
from repro.workloads.registry import make_workload

__all__ = [
    "RunRequest",
    "WorkloadSpec",
    "build_workload",
    "execute_batch",
    "run_batch",
    "simulate",
]

#: Length of the unsalted request-fingerprint prefix events carry —
#: enough to join every lifecycle edge of one request across the stream.
EVENT_FINGERPRINT_LEN = 12


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry workload, fully pinned: (name, size, seed, overrides)."""

    name: str
    size: str
    seed: Optional[int] = None
    overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, name: str, size: str, seed: Optional[int] = None,
             **overrides) -> "WorkloadSpec":
        return cls(name=name, size=size, seed=seed,
                   overrides=tuple(sorted(overrides.items())))

    def build(self) -> Workload:
        if self.seed is None:
            raise ValueError("cannot build an unresolved spec (seed unset)")
        return make_workload(self.name, self.size, seed=self.seed,
                             **dict(self.overrides))

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "size": self.size,
            "seed": self.seed,
            "overrides": dict(self.overrides),
        }


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation point of the evaluation matrix.

    ``workloads`` holds one spec for a single-application run or several for
    a multiprogrammed mix (Fig. 9).  ``config=None`` and
    ``max_ops_per_thread=None`` mean "the defaults in effect at execution
    time"; :meth:`resolve` pins them so the request becomes a complete,
    environment-independent description of the run.
    """

    workloads: Tuple[WorkloadSpec, ...]
    policy: DispatchPolicy
    config: Optional[SystemConfig] = None
    max_ops_per_thread: Optional[int] = None

    # Construction ------------------------------------------------------

    @classmethod
    def single(cls, name: str, size: str, policy: DispatchPolicy,
               config: Optional[SystemConfig] = None,
               max_ops_per_thread: Optional[int] = None,
               seed: Optional[int] = None, **overrides) -> "RunRequest":
        """A request for one registry workload (the ``run_config`` shape)."""
        return cls(workloads=(WorkloadSpec.make(name, size, seed, **overrides),),
                   policy=policy, config=config,
                   max_ops_per_thread=max_ops_per_thread)

    @classmethod
    def multiprog(cls, parts: Sequence[Tuple[str, str, int]],
                  policy: DispatchPolicy,
                  config: Optional[SystemConfig] = None,
                  max_ops_per_thread: Optional[int] = None) -> "RunRequest":
        """A multiprogrammed mix of ``(name, size, seed)`` parts (Fig. 9)."""
        specs = tuple(WorkloadSpec.make(name, size, seed)
                      for name, size, seed in parts)
        if len(specs) < 2:
            raise ValueError("a multiprogrammed request needs >= 2 workloads")
        return cls(workloads=specs, policy=policy, config=config,
                   max_ops_per_thread=max_ops_per_thread)

    # Resolution --------------------------------------------------------

    @property
    def resolved(self) -> bool:
        return (self.config is not None
                and self.max_ops_per_thread is not None
                and all(spec.seed is not None for spec in self.workloads))

    def resolve(self, settings) -> "RunRequest":
        """Pin every default against ``settings`` (a BenchSettings).

        The resolved request no longer depends on the environment: two equal
        resolved requests describe bit-identical simulations, which is what
        makes them usable as memoization and disk-cache keys.
        """
        workloads = tuple(
            spec if spec.seed is not None else replace(spec, seed=settings.seed)
            for spec in self.workloads)
        config = self.config if self.config is not None else scaled_config()
        max_ops = (self.max_ops_per_thread
                   if self.max_ops_per_thread is not None
                   else settings.max_ops_per_thread)
        return RunRequest(workloads=workloads, policy=self.policy,
                          config=config, max_ops_per_thread=max_ops)

    # Identity ----------------------------------------------------------

    def describe(self) -> Dict:
        """A JSON-safe description (cache metadata, fingerprint input)."""
        if not self.resolved:
            raise ValueError("describe() requires a resolved request")
        return {
            "workloads": [spec.describe() for spec in self.workloads],
            "policy": self.policy.value,
            "config": self.config.fingerprint(),
            "max_ops_per_thread": self.max_ops_per_thread,
        }

    def fingerprint(self, salt: str = "") -> str:
        """Content hash of this (resolved) request, mixed with ``salt``.

        The disk cache passes a code-version salt so results persisted by an
        older simulator can never satisfy a newer one.
        """
        payload = json.dumps({"salt": salt, "request": self.describe()},
                             sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag (telemetry stems, progress lines)."""
        names = "+".join(f"{s.name}-{s.size[0]}" for s in self.workloads)
        return f"{names}/{self.policy.value}"

    def event_fingerprint(self) -> str:
        """The unsalted fingerprint prefix run-ledger events carry.

        Deliberately salt-free (unlike cache keys) so the same request is
        joinable across streams produced by different code versions.
        """
        return self.fingerprint()[:EVENT_FINGERPRINT_LEN]


# ----------------------------------------------------------------------
# Execution primitives
# ----------------------------------------------------------------------


def build_workload(request: RunRequest) -> Workload:
    """Instantiate the workload(s) a resolved request describes."""
    specs = request.workloads
    if len(specs) == 1:
        return specs[0].build()
    first, second, *rest = [spec.build() for spec in specs]
    if rest:
        raise ValueError("multiprogrammed mixes support exactly two parts")
    return MultiprogrammedWorkload(first, second)


def simulate(request: RunRequest,
             telemetry: Optional[Telemetry] = None,
             trace=None) -> RunResult:
    """Run one resolved request on a fresh machine (no caching).

    With a ``trace`` (a :class:`~repro.cpu.trace.CompiledTrace` captured
    from this request's workload under the same thread count, page size and
    ops cap), the engine replays it instead of re-running the functional
    algorithm — bit-identical to the generator path, asserted by
    ``tests/bench/test_traces.py``.
    """
    if not request.resolved:
        raise ValueError(f"cannot simulate unresolved request {request!r}")
    runnable = trace if trace is not None else build_workload(request)
    system = System(request.config, request.policy, telemetry=telemetry)
    return system.run(runnable,
                      max_ops_per_thread=request.max_ops_per_thread)


def _bundle_stem(request: RunRequest, workload_name: str,
                 unique: bool) -> str:
    # A fingerprint prefix keeps concurrent workers sweeping the same
    # (workload, policy) across sizes/configs from overwriting bundles;
    # serial execution keeps the short legacy stems.
    if unique:
        return bundle_stem(workload_name, request.policy.value,
                           request.fingerprint()[:10])
    return bundle_stem(workload_name, request.policy.value)


def _apply_plan_cache_limit(limit: Optional[int]) -> None:
    """Rebound the columnar plan cache in this process (None = leave it).

    Deferred import: the columnar engine (and numpy) must stay off the
    import path until a replay actually needs it.
    """
    if limit is None:
        return
    from repro.system import columnar

    columnar.set_plan_cache_limit(limit)


def _plan_cache_delta(result: RunResult) -> Dict[str, int]:
    """The plan-cache hit/miss/eviction delta a replay recorded.

    Zeroes for generator runs and scalar replays — the transient
    ``_plan_cache`` metadata entry only exists when the columnar engine
    ran (it is excluded from ``to_dict()``, so it must be read off the
    live result before serialization).
    """
    delta = result.metadata.get("_plan_cache")
    if not isinstance(delta, dict):
        return {"hits": 0, "misses": 0, "evictions": 0}
    return {key: int(value) for key, value in delta.items()}


def _execute_payload(payload) -> Dict:
    """Process-pool worker: simulate one request, return its envelope.

    Top-level (picklable) and fed everything through the payload, so it is
    correct under both the fork and spawn start methods.  Returns plain
    data the parent re-hydrates — never the live object graph::

        {"result":    RunResult.to_dict(),
         "events":    [bare run-ledger events: dispatch, start, end],
         "worker":    {"pid": ..., "dur_s": ...,
                       "plan_cache": {hits, misses, evictions},
                       "trace_decode": {decodes, memo_hits}},
         "telemetry": {"metrics": ..., "profile": ...} | None}

    The events and the telemetry snapshot (when telemetry is enabled) ship
    back with the result, so the parent can merge the run ledger
    order-preserving and aggregate cross-worker metrics — see
    :mod:`repro.obs.events` and :mod:`repro.obs.aggregate`.  The
    ``plan_cache`` and ``trace_decode`` deltas are the per-run cost of
    scheduling: what this run paid in ColumnPlan compiles and shared-memory
    trace decodes (see :func:`execute_batch`'s affinity schedule).
    """
    (request, telemetry_dir, telemetry_interval, unique_stem, trace,
     plan_limit) = payload
    _apply_plan_cache_limit(plan_limit)
    decode_before = decode_counters()
    if isinstance(trace, TraceHandle):
        # Parallel batches ship traces as shared-memory handles; attach and
        # decode once per worker process (attach_trace memoizes by name).
        trace = attach_trace(trace)
    decode_after = decode_counters()
    telemetry = (Telemetry(interval=telemetry_interval)
                 if telemetry_dir is not None else None)
    pid = os.getpid()
    fp = request.event_fingerprint()
    events = [
        worker_event("worker_dispatch", fingerprint=fp,
                     label=request.label(), worker=pid),
        worker_event("simulate_start", fingerprint=fp, worker=pid),
    ]
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness wall time for ledger events; never feeds simulated time
    result = simulate(request, telemetry=telemetry, trace=trace)
    dur = time.perf_counter() - t0  # simlint: ignore[SIM001] -- harness wall time for ledger events; never feeds simulated time
    events.append(worker_event(
        "simulate_end", fingerprint=fp, worker=pid, dur_s=dur,
        cycles=float(result.cycles), instructions=int(result.instructions)))
    snapshot = None
    if telemetry is not None:
        telemetry.write(Path(telemetry_dir),
                        _bundle_stem(request, result.workload, unique_stem),
                        result=result)
        snapshot = {"metrics": telemetry.obs.metrics.to_dict(),
                    "profile": telemetry.obs.profiler.to_dict()}
    return {
        "result": result.to_dict(),
        "events": events,
        "worker": {
            "pid": pid,
            "dur_s": dur,
            "plan_cache": _plan_cache_delta(result),
            "trace_decode": {key: decode_after[key] - decode_before[key]
                             for key in decode_after},
        },
        "telemetry": snapshot,
    }


def _execute_shard(payloads) -> List[Dict]:
    """Process-pool worker: run one trace-affine shard of payloads.

    A shard is a list of payloads that share a published trace (see
    :func:`_affinity_shards`), executed back to back in one worker so the
    shared-memory decode happens once and the ColumnPlan cache serves
    every sibling config from the first compile.
    """
    return [_execute_payload(payload) for payload in payloads]


def _affinity_shards(handles: Sequence, workers: int) -> List[List[int]]:
    """Group request indices into worker-affine, load-balanced shards.

    Requests sharing a published trace segment land in the same shard, so
    one worker pays the segment decode and the plan compile for the whole
    group — completion-order dispatch scatters them across the pool, where
    every worker re-derives both.  Two deterministic adjustments keep the
    pool busy:

    * shards larger than ``ceil(total / workers)`` are split into chunks of
      that size (a single-trace sweep must not serialize on one worker) —
      each chunk is still trace-affine; and
    * shards are ordered largest-first (LPT), so the long shards start
      before the stragglers.
    """
    groups: "Dict[object, List[int]]" = {}
    for index, handle in enumerate(handles):
        key = (handle.name if isinstance(handle, TraceHandle)
               else ("solo", index))
        groups.setdefault(key, []).append(index)
    cap = max(1, -(-len(handles) // max(workers, 1)))
    shards: List[List[int]] = []
    for indices in groups.values():
        for start in range(0, len(indices), cap):
            shards.append(indices[start:start + cap])
    shards.sort(key=lambda shard: (-len(shard), shard[0]))
    return shards


def execute_batch(
    requests: Sequence[RunRequest],
    jobs: int = 1,
    telemetry_dir: Optional[Path] = None,
    telemetry_interval: float = 10_000.0,
    traces: Optional[Sequence] = None,
    on_payload: Optional[Callable[[int, Dict], None]] = None,
    schedule: str = "fifo",
    plan_cache_limit: Optional[int] = None,
) -> List[Dict]:
    """Execute resolved requests, returning worker envelopes request-order.

    The engine room of :func:`run_batch` — same execution semantics, but
    the full worker envelopes (result + run-ledger events + telemetry
    snapshot, see :func:`_execute_payload`) come back instead of bare
    results.  ``on_payload(index, envelope)`` fires as each point
    *completes* — out of request order under ``jobs > 1`` — which is what
    drives live progress; the returned list is always in request order.

    ``schedule`` picks the parallel dispatch strategy:

    * ``"fifo"`` — one future per request, completion-order pickup.  Points
      sharing a trace scatter across workers, each re-decoding the shm
      segment and re-compiling the ColumnPlan.
    * ``"affinity"`` — requests are sharded by published trace segment
      (:func:`_affinity_shards`): every point sharing a capture lands on
      the same worker and reuses its decoded trace and plan-cache entry.

    Per-point results are bit-identical under either schedule (every
    simulation runs on a fresh machine seeded only by its request); the
    schedule only moves harness cost, which the per-run ``plan_cache`` /
    ``trace_decode`` worker accounting makes visible.
    ``plan_cache_limit`` rebounds the columnar plan cache in every
    executing process (None keeps the default) — a memory/recompile trade
    that never changes results.
    """
    if schedule not in ("fifo", "affinity"):
        raise ValueError(f"unknown schedule {schedule!r}; "
                         f"choose 'fifo' or 'affinity'")
    for request in requests:
        if not request.resolved:
            raise ValueError(f"cannot execute unresolved request {request!r}")
    if traces is None:
        traces = [None] * len(requests)
    elif len(traces) != len(requests):
        raise ValueError(f"got {len(traces)} traces for {len(requests)} "
                         f"requests — the sequences must align")
    parallel = jobs > 1 and len(requests) > 1
    tdir = str(telemetry_dir) if telemetry_dir is not None else None
    if not parallel:
        envelopes = []
        for i, (request, trace) in enumerate(zip(requests, traces)):
            envelope = _execute_payload(
                (request, tdir, telemetry_interval, parallel, trace,
                 plan_cache_limit))
            if on_payload is not None:
                on_payload(i, envelope)
            envelopes.append(envelope)
        return envelopes
    # Parallel: publish each unique trace once into shared memory and ship
    # the payloads a tiny handle instead of the pickled arrays.  The runner
    # owns segment lifetime — unlinked in the finally whether the pool
    # drains normally or a worker dies.
    handles, segments = publish_traces(traces)
    payloads = [(request, tdir, telemetry_interval, parallel, handle,
                 plan_cache_limit)
                for request, handle in zip(requests, handles)]
    workers = min(jobs, len(requests))
    envelopes = [None] * len(payloads)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if schedule == "affinity":
                shards = _affinity_shards(handles, workers)
                pending = {pool.submit(_execute_shard,
                                       [payloads[i] for i in shard]): shard
                           for shard in shards}
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        shard = pending.pop(future)
                        for i, envelope in zip(shard, future.result()):
                            if on_payload is not None:
                                on_payload(i, envelope)
                            envelopes[i] = envelope
            else:
                pending = {pool.submit(_execute_payload, payload): i
                           for i, payload in enumerate(payloads)}
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        i = pending.pop(future)
                        envelope = future.result()
                        if on_payload is not None:
                            on_payload(i, envelope)
                        envelopes[i] = envelope
    finally:
        unlink_segments(segments)
    return envelopes


def run_batch(
    requests: Sequence[RunRequest],
    jobs: int = 1,
    telemetry_dir: Optional[Path] = None,
    telemetry_interval: float = 10_000.0,
    traces: Optional[Sequence] = None,
    schedule: str = "fifo",
    plan_cache_limit: Optional[int] = None,
) -> List[RunResult]:
    """Execute resolved requests, fanning across ``jobs`` processes.

    Results are returned in request order regardless of completion order,
    and each simulation runs on a fresh machine seeded entirely by its
    request — so the merged results are bit-identical to a serial loop
    (asserted by ``tests/bench/test_frontier.py``).  With ``jobs <= 1`` or a
    single request the batch runs in-process.  Every result — serial or
    parallel — is rehydrated from its ``to_dict()`` form, so both modes
    return the identical representation.

    ``traces`` (aligned with ``requests``; None entries allowed) carries
    pre-captured CompiledTraces: those points replay instead of re-running
    the functional workload.  A figure's whole sweep pays one capture in
    the parent, and parallel batches ship each unique trace to workers
    once through a shared-memory segment (:mod:`repro.bench.shm`) instead
    of pickling it into every payload.

    Callers that also want the per-request run-ledger events and worker
    telemetry snapshots use :func:`execute_batch` instead.
    """
    envelopes = execute_batch(
        requests, jobs=jobs, telemetry_dir=telemetry_dir,
        telemetry_interval=telemetry_interval, traces=traces,
        schedule=schedule, plan_cache_limit=plan_cache_limit)
    return [RunResult.from_dict(e["result"]) for e in envelopes]
