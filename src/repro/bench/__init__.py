"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.runner import BenchSettings, run_config, run_workload
from repro.bench.tables import format_series, format_table, geometric_mean

__all__ = [
    "BenchSettings",
    "format_series",
    "format_table",
    "geometric_mean",
    "run_config",
    "run_workload",
]
