"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.frontier import RunRequest, WorkloadSpec, run_batch
from repro.bench.runner import (
    BenchSettings,
    current_settings,
    prefetch,
    run_config,
    run_multiprog,
    run_request,
    run_workload,
)
from repro.bench.tables import format_series, format_table, geometric_mean

__all__ = [
    "BenchSettings",
    "RunRequest",
    "WorkloadSpec",
    "current_settings",
    "format_series",
    "format_table",
    "geometric_mean",
    "prefetch",
    "run_batch",
    "run_config",
    "run_multiprog",
    "run_request",
    "run_workload",
]
