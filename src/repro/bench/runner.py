"""Shared experiment runner: memoization, disk cache, parallel batches.

Several figures consume the same underlying runs (Fig. 6's speedups and
Fig. 7's traffic and Fig. 12's energy all come from the same simulations),
so the runner memoizes RunResults by their fully *resolved*
:class:`~repro.bench.frontier.RunRequest` — the request pins the operation
cap and seed from the :class:`BenchSettings` in effect at call time, so
changing ``REPRO_BENCH_OPS`` mid-process can never serve a stale result.

Layered on top of the in-process memo:

* a **disk cache** (:func:`enable_disk_cache`) persisting results under a
  content fingerprint + code-version salt, so repeated suite invocations
  and CI skip simulation entirely (``python -m repro.bench`` enables it by
  default under ``.bench_cache/``); and
* a **parallel backend** (:func:`set_jobs`): :func:`prefetch` takes a
  figure script's whole frontier of requests and fans the uncached points
  across a process pool, bit-identical to serial execution.

Environment knobs (for quick or exhaustive regeneration):

* ``REPRO_BENCH_OPS`` — operations per thread per run (default 8000);
* ``REPRO_BENCH_MIXES`` — multiprogrammed mixes for Fig. 9 (default 24,
  paper used 200);
* ``REPRO_BENCH_SEED`` — base RNG seed for workload generation (default 42).

Telemetry: :func:`enable_telemetry` makes every *simulated* (i.e. uncached)
run write a full observability bundle (interval JSONL, Chrome trace, run
summary) into the given directory — this is what ``python -m repro.bench
run <exp> --telemetry`` switches on.  Parallel workers suffix their bundle
stems with a request-fingerprint prefix so concurrent sweeps of the same
(workload, policy) never overwrite each other.
"""

import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench import frontier
from repro.bench.cache import DEFAULT_CACHE_DIR, BenchCache
from repro.bench.frontier import RunRequest
from repro.bench.traces import TraceStore
from repro.core.dispatch import DispatchPolicy
from repro.obs.aggregate import FrontierAggregator
from repro.obs.events import NULL_LEDGER, RunLedger
from repro.obs.telemetry import Telemetry, bundle_stem
from repro.system.config import SystemConfig, scaled_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.base import Workload


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass(frozen=True)
class BenchSettings:
    """Global defaults for all benchmark experiments.

    Field defaults re-read the environment at *instantiation* time (via
    ``default_factory``), so ``current_settings()`` always reflects the
    process's current ``REPRO_BENCH_*`` values.
    """

    max_ops_per_thread: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_OPS", 8000))
    n_mixes: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_MIXES", 24))
    seed: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_SEED", 42))
    #: ColumnPlan cache entries per process (``REPRO_BENCH_PLAN_CACHE``).
    #: A harness memory/recompile trade only — results are bound-independent
    #: (tests/bench/test_plan_cache.py), so resolve() deliberately does NOT
    #: pin it into request fingerprints.
    plan_cache_limit: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_PLAN_CACHE", 8))


def current_settings() -> BenchSettings:
    """The settings in effect right now (re-reads the environment)."""
    return BenchSettings()


def __getattr__(name: str):
    # The import-time snapshot predates current_settings() and could go
    # stale the moment REPRO_BENCH_* changed; resolve it lazily and warn.
    if name == "SETTINGS":
        warnings.warn(
            "repro.bench.runner.SETTINGS is deprecated: it was an "
            "import-time snapshot that ignored later environment changes; "
            "call current_settings() instead",
            DeprecationWarning, stacklevel=2)
        return current_settings()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# Runner state: memo, disk cache, parallelism, telemetry, accounting
# ----------------------------------------------------------------------

_MEMO: Dict[RunRequest, RunResult] = {}
_DISK_CACHE: Optional[BenchCache] = None
_JOBS = 1

#: Parallel dispatch strategy for batches (see frontier.execute_batch):
#: "affinity" shards requests by shared trace so a worker reuses its decoded
#: segment and ColumnPlan cache; "fifo" is completion-order scatter.
#: Results are bit-identical either way — this only moves harness cost.
_SCHEDULE = "affinity"

#: Capture-once trace store.  The in-process memo is always on — one
#: runner session captures each (workload, input, seed) stream exactly once
#: however many policies/configs sweep it — and :func:`enable_trace_cache`
#: adds a disk generation shared across invocations.
_TRACE_STORE = TraceStore()

#: When set, simulated (uncached) runs write telemetry bundles here.
_TELEMETRY_DIR: Optional[Path] = None
_TELEMETRY_INTERVAL = 10_000.0

#: Run ledger (see :mod:`repro.obs.events`).  NULL_LEDGER by default, so
#: nothing in the request lifecycle pays for event emission until
#: :func:`enable_run_ledger` swaps in a live stream.
_LEDGER = NULL_LEDGER

#: Cross-worker telemetry aggregator: always on (it works at batch
#: granularity, a few dict updates per simulation) so every
#: ``BENCH_<runid>.json`` carries a frontier summary.
_AGGREGATOR = FrontierAggregator()


@dataclass
class RunnerAccounting:
    """Work counters for one runner session (feeds BENCH_* trajectories).

    ``simulations`` counts actual simulator executions; ``memo_hits`` counts
    results served from the in-process memo by :func:`run_request`/
    :func:`run_config`; ``disk_hits`` counts results loaded from the disk
    cache (by lookups and by :func:`prefetch`).  ``instructions`` and
    ``sim_wall_seconds`` cover simulated runs only, so
    ``instructions / sim_wall_seconds`` is the harness's simulated-ops/sec
    throughput.  ``trace_captures``/``trace_hits`` count functional
    workload captures vs trace-store hits (capture-once replay).

    The remaining counters measure what the parallel schedule cost:
    ``plan_hits``/``plan_misses``/``plan_evictions`` aggregate the columnar
    ColumnPlan cache deltas every executed run reported, and
    ``trace_decodes``/``trace_decode_hits`` count worker-side shared-memory
    segment decodes vs decode-memo hits.  Affinity scheduling exists to
    turn misses/decodes into hits — these are how that shows up in
    ``BENCH_*`` records and ``history --compare``.
    """

    simulations: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    instructions: float = 0.0
    sim_wall_seconds: float = 0.0
    trace_captures: int = 0
    trace_hits: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    trace_decodes: int = 0
    trace_decode_hits: int = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "simulations": self.simulations,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "instructions": self.instructions,
            "sim_wall_seconds": self.sim_wall_seconds,
            "trace_captures": self.trace_captures,
            "trace_hits": self.trace_hits,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_evictions": self.plan_evictions,
            "trace_decodes": self.trace_decodes,
            "trace_decode_hits": self.trace_decode_hits,
        }


_ACCOUNTING = RunnerAccounting()


def accounting() -> RunnerAccounting:
    """The live accounting object (snapshot() it around experiments)."""
    return _ACCOUNTING


def reset_accounting() -> None:
    """Fresh counters *and* a fresh frontier aggregator (they pair up:
    :func:`frontier_summary` derives its rates from both)."""
    global _ACCOUNTING, _AGGREGATOR
    _ACCOUNTING = RunnerAccounting()
    _AGGREGATOR = FrontierAggregator()


def frontier_aggregator() -> FrontierAggregator:
    """The live cross-worker telemetry aggregator."""
    return _AGGREGATOR


def frontier_summary() -> Dict:
    """Frontier-level observability digest for this runner session.

    Cache/trace hit rates and simulated ops/s come from the accounting
    counters; simulate-latency quantiles, per-worker utilization, and any
    merged worker telemetry come from the aggregator.  Embedded in every
    ``BENCH_<runid>.json`` trajectory record.
    """
    return _AGGREGATOR.summary(accounting=_ACCOUNTING.snapshot())


def enable_run_ledger(listener=None) -> RunLedger:
    """Start a live run ledger; every cache/trace/simulate edge now emits.

    The ledger is wired into the disk cache and trace store currently in
    effect (and into any enabled later — ``enable_disk_cache`` and
    ``enable_trace_cache`` attach the active ledger to the stores they
    create).  ``listener`` receives each event as it lands — live events
    during parallel batches arrive in completion order; the ledger itself
    is always merged in request order.
    """
    global _LEDGER
    _LEDGER = RunLedger(listener=listener)
    if _DISK_CACHE is not None:
        _DISK_CACHE.ledger = _LEDGER
    _TRACE_STORE.ledger = _LEDGER
    return _LEDGER


def disable_run_ledger() -> None:
    global _LEDGER
    _LEDGER = NULL_LEDGER
    if _DISK_CACHE is not None:
        _DISK_CACHE.ledger = NULL_LEDGER
    _TRACE_STORE.ledger = NULL_LEDGER


def run_ledger():
    """The active ledger (NULL_LEDGER when disabled)."""
    return _LEDGER


def set_jobs(jobs: int) -> int:
    """Worker processes for batch execution (1 = serial, the default)."""
    global _JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _JOBS = jobs
    return _JOBS


def get_jobs() -> int:
    return _JOBS


def set_schedule(schedule: str) -> str:
    """Parallel dispatch strategy: "affinity" (default) or "fifo"."""
    global _SCHEDULE
    if schedule not in ("fifo", "affinity"):
        raise ValueError(f"unknown schedule {schedule!r}; "
                         f"choose 'fifo' or 'affinity'")
    _SCHEDULE = schedule
    return _SCHEDULE


def get_schedule() -> str:
    return _SCHEDULE


def enable_disk_cache(root=DEFAULT_CACHE_DIR,
                      salt: Optional[str] = None) -> BenchCache:
    """Persist every result to (and serve hits from) ``root``."""
    global _DISK_CACHE
    _DISK_CACHE = BenchCache(root, salt=salt)
    _DISK_CACHE.ledger = _LEDGER
    return _DISK_CACHE


def disable_disk_cache() -> None:
    global _DISK_CACHE
    _DISK_CACHE = None


def disk_cache() -> Optional[BenchCache]:
    return _DISK_CACHE


def enable_trace_cache(root, salt: Optional[str] = None) -> TraceStore:
    """Persist captured traces to (and serve them from) ``root``.

    Independent of the result cache: ``python -m repro.bench run
    --no-cache`` still keeps the trace generation, because a re-simulation
    never needs to re-run the functional workloads.
    """
    global _TRACE_STORE
    _TRACE_STORE = TraceStore(root, salt=salt)
    _TRACE_STORE.ledger = _LEDGER
    return _TRACE_STORE


def disable_trace_cache() -> TraceStore:
    """Drop the disk generation; capture-once memoization stays on."""
    global _TRACE_STORE
    _TRACE_STORE = TraceStore()
    _TRACE_STORE.ledger = _LEDGER
    return _TRACE_STORE


def trace_store() -> TraceStore:
    return _TRACE_STORE


def enable_telemetry(out_dir, interval: float = 10_000.0) -> Path:
    """Write a telemetry bundle for every subsequent simulated run."""
    global _TELEMETRY_DIR, _TELEMETRY_INTERVAL
    _TELEMETRY_DIR = Path(out_dir)
    _TELEMETRY_INTERVAL = interval
    return _TELEMETRY_DIR


def disable_telemetry() -> None:
    global _TELEMETRY_DIR
    _TELEMETRY_DIR = None


def clear_cache() -> None:
    """Drop the in-process memos (the disk caches are left untouched)."""
    _MEMO.clear()
    _TRACE_STORE.clear()


# ----------------------------------------------------------------------
# Execution: single requests and prefetched batches
# ----------------------------------------------------------------------


def _execute(requests: Sequence[RunRequest]) -> List[RunResult]:
    """Simulate resolved cache-missing requests; memoize and persist.

    Each request's workload is captured once into a CompiledTrace (served
    from the trace store when a sibling config already paid the capture)
    and the batch replays the traces — parallel workers receive them
    through the payload, so a sweep's functional runs happen exactly once,
    in the parent.

    Observability: worker envelopes feed the frontier aggregator, and with
    a live ledger their events stream to the listener as points complete
    (live progress) and are then merged into the ledger in *request* order
    — the deterministic stream, exactly like results.
    """
    store = _TRACE_STORE
    captures0 = store.captures
    hits0 = store.memo_hits + store.disk_hits
    traces = [store.get_or_capture(request) for request in requests]
    _ACCOUNTING.trace_captures += store.captures - captures0
    _ACCOUNTING.trace_hits += store.memo_hits + store.disk_hits - hits0
    ledger = _LEDGER
    on_payload = None
    if ledger.enabled and ledger.listener is not None:
        def on_payload(index, envelope, _listener=ledger.listener):
            for event in envelope["events"]:
                _listener(event)
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness throughput accounting; never feeds simulated time
    try:
        envelopes = frontier.execute_batch(
            requests,
            jobs=_JOBS,
            telemetry_dir=_TELEMETRY_DIR,
            telemetry_interval=_TELEMETRY_INTERVAL,
            traces=traces,
            on_payload=on_payload,
            schedule=_SCHEDULE,
            plan_cache_limit=current_settings().plan_cache_limit,  # simflow: ignore[FLW003] -- cache bound shapes host memory use only; results are bound-independent (tests/bench/test_plan_cache.py), so it must NOT be pinned into request fingerprints
        )
    except Exception as exc:
        ledger.emit("failure", fingerprint="batch", error=repr(exc))
        raise
    elapsed = time.perf_counter() - t0  # simlint: ignore[SIM001] -- harness throughput accounting; never feeds simulated time
    results = [RunResult.from_dict(e["result"]) for e in envelopes]
    _AGGREGATOR.add_batch(elapsed)
    for envelope in envelopes:
        _AGGREGATOR.add_payload(envelope)
        ledger.absorb(envelope["events"], notify=on_payload is None)
        worker = envelope.get("worker", {})
        plan = worker.get("plan_cache", {})
        _ACCOUNTING.plan_hits += int(plan.get("hits", 0))
        _ACCOUNTING.plan_misses += int(plan.get("misses", 0))
        _ACCOUNTING.plan_evictions += int(plan.get("evictions", 0))
        decode = worker.get("trace_decode", {})
        _ACCOUNTING.trace_decodes += int(decode.get("decodes", 0))
        _ACCOUNTING.trace_decode_hits += int(decode.get("memo_hits", 0))
    _ACCOUNTING.simulations += len(requests)
    _ACCOUNTING.sim_wall_seconds += elapsed
    for request, result in zip(requests, results):
        _ACCOUNTING.instructions += result.instructions
        _MEMO[request] = result
        if _DISK_CACHE is not None:
            _DISK_CACHE.put(request, result)
    return results


def run_request(request: RunRequest) -> RunResult:
    """Resolve and run one request through memo -> disk cache -> simulate."""
    request = request.resolve(current_settings())
    hit = _MEMO.get(request)
    if hit is not None:
        _ACCOUNTING.memo_hits += 1
        if _LEDGER.enabled:
            _LEDGER.emit("memo_hit", fingerprint=request.event_fingerprint())
        return hit
    if _LEDGER.enabled:
        _LEDGER.emit("request_planned", fingerprint=request.event_fingerprint(),
                     label=request.label())
    if _DISK_CACHE is not None:
        cached = _DISK_CACHE.get(request)
        if cached is not None:
            _ACCOUNTING.disk_hits += 1
            _MEMO[request] = cached
            return cached
    return _execute([request])[0]


def prefetch(requests: Iterable[RunRequest]) -> int:
    """Materialize a figure script's frontier of requests in one batch.

    Resolves and dedupes the requests, loads whatever the disk cache
    already holds, and fans the remaining points across the configured
    worker pool — after which every ``run_config``/``run_request`` call in
    the figure body is a memo hit.  Returns the number of simulations that
    actually ran.
    """
    settings = current_settings()
    resolved: List[RunRequest] = []
    seen = set()
    for request in requests:
        request = request.resolve(settings)
        if request in seen:
            continue
        seen.add(request)
        resolved.append(request)
    if _LEDGER.enabled:
        for request in resolved:
            _LEDGER.emit("request_planned",
                         fingerprint=request.event_fingerprint(),
                         label=request.label())
    misses: List[RunRequest] = []
    for request in resolved:
        if request in _MEMO:
            # Not counted in accounting (prefetch never *serves* results;
            # the figure-body run_request calls do) but still a ledger edge.
            if _LEDGER.enabled:
                _LEDGER.emit("memo_hit",
                             fingerprint=request.event_fingerprint())
            continue
        if _DISK_CACHE is not None:
            cached = _DISK_CACHE.get(request)
            if cached is not None:
                _ACCOUNTING.disk_hits += 1
                _MEMO[request] = cached
                continue
        misses.append(request)
    if misses:
        _execute(misses)
    return len(misses)


# ----------------------------------------------------------------------
# Public entry points used by the experiment definitions
# ----------------------------------------------------------------------


def run_workload(
    workload: Workload,
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> RunResult:
    """Run an already-constructed workload on a fresh system (uncached).

    The escape hatch for workload objects that are not expressible as a
    :class:`RunRequest`; results are neither memoized nor persisted.  An
    explicitly passed ``telemetry`` is attached but not written to disk
    (the caller owns it); with :func:`enable_telemetry` active and no
    explicit telemetry, a bundle is created and written automatically.
    """
    auto_telemetry = telemetry is None and _TELEMETRY_DIR is not None
    if auto_telemetry:
        telemetry = Telemetry(interval=_TELEMETRY_INTERVAL)
    system = System(config if config is not None else scaled_config(), policy,
                    telemetry=telemetry)
    if max_ops_per_thread is None:
        max_ops_per_thread = current_settings().max_ops_per_thread
    result = system.run(workload, max_ops_per_thread=max_ops_per_thread)
    if auto_telemetry:
        telemetry.write(_TELEMETRY_DIR,
                        bundle_stem(workload.name, policy.value),
                        result=result)
    return result


def run_config(
    name: str,
    size: str,
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
    seed: Optional[int] = None,
    **workload_overrides,
) -> RunResult:
    """Run a registry workload under one configuration (memoized/cached)."""
    return run_request(RunRequest.single(
        name, size, policy, config=config,
        max_ops_per_thread=max_ops_per_thread, seed=seed,
        **workload_overrides))


def run_multiprog(
    parts: Sequence[Tuple[str, str, int]],
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
) -> RunResult:
    """Run a multiprogrammed mix of ``(name, size, seed)`` parts (Fig. 9)."""
    return run_request(RunRequest.multiprog(
        parts, policy, config=config,
        max_ops_per_thread=max_ops_per_thread))
