"""Shared experiment runner with result memoization.

Several figures consume the same underlying runs (Fig. 6's speedups and
Fig. 7's traffic and Fig. 12's energy all come from the same simulations),
so the runner memoizes RunResults by their full parameterization —
*including* the :class:`BenchSettings` in effect at call time, so changing
``REPRO_BENCH_OPS`` mid-process can never serve a stale cached result.

Environment knobs (for quick or exhaustive regeneration):

* ``REPRO_BENCH_OPS`` — operations per thread per run (default 8000);
* ``REPRO_BENCH_MIXES`` — multiprogrammed mixes for Fig. 9 (default 24,
  paper used 200).

Telemetry: :func:`enable_telemetry` makes every *uncached* run write a
full observability bundle (interval JSONL, Chrome trace, run summary) into
the given directory — this is what ``python -m repro.bench run <exp>
--telemetry`` switches on.
"""

import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.dispatch import DispatchPolicy
from repro.obs.telemetry import Telemetry
from repro.system.config import SystemConfig, scaled_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass(frozen=True)
class BenchSettings:
    """Global defaults for all benchmark experiments.

    Field defaults re-read the environment at *instantiation* time (via
    ``default_factory``), so ``current_settings()`` always reflects the
    process's current ``REPRO_BENCH_*`` values.
    """

    max_ops_per_thread: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_OPS", 8000))
    n_mixes: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_MIXES", 24))
    seed: int = 42


def current_settings() -> BenchSettings:
    """The settings in effect right now (re-reads the environment)."""
    return BenchSettings()


#: Snapshot of the settings at import time (kept for backward compatibility;
#: prefer :func:`current_settings`, which tracks environment changes).
SETTINGS = BenchSettings()

_CACHE: Dict[Tuple, RunResult] = {}

#: When set, uncached runs write telemetry bundles into this directory.
_TELEMETRY_DIR: Optional[Path] = None
_TELEMETRY_INTERVAL = 10_000.0


def enable_telemetry(out_dir, interval: float = 10_000.0) -> Path:
    """Write a telemetry bundle for every subsequent uncached run."""
    global _TELEMETRY_DIR, _TELEMETRY_INTERVAL
    _TELEMETRY_DIR = Path(out_dir)
    _TELEMETRY_INTERVAL = interval
    return _TELEMETRY_DIR


def disable_telemetry() -> None:
    global _TELEMETRY_DIR
    _TELEMETRY_DIR = None


def _telemetry_stem(workload: Workload, policy: DispatchPolicy) -> str:
    raw = f"{workload.name}_{policy.value}"
    return re.sub(r"[^A-Za-z0-9._-]+", "-", raw).lower()


def run_workload(
    workload: Workload,
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> RunResult:
    """Run an already-constructed workload on a fresh system (uncached).

    An explicitly passed ``telemetry`` is attached but not written to disk
    (the caller owns it); with :func:`enable_telemetry` active and no
    explicit telemetry, a bundle is created and written automatically.
    """
    auto_telemetry = telemetry is None and _TELEMETRY_DIR is not None
    if auto_telemetry:
        telemetry = Telemetry(interval=_TELEMETRY_INTERVAL)
    system = System(config if config is not None else scaled_config(), policy,
                    telemetry=telemetry)
    if max_ops_per_thread is None:
        max_ops_per_thread = current_settings().max_ops_per_thread
    result = system.run(workload, max_ops_per_thread=max_ops_per_thread)
    if auto_telemetry:
        telemetry.write(_TELEMETRY_DIR, _telemetry_stem(workload, policy),
                        result=result)
    return result


def run_config(
    name: str,
    size: str,
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
    seed: Optional[int] = None,
    **workload_overrides,
) -> RunResult:
    """Run a registry workload under one configuration (memoized)."""
    settings = current_settings()
    if seed is None:
        seed = settings.seed
    if max_ops_per_thread is None:
        max_ops_per_thread = settings.max_ops_per_thread
    key = (
        name,
        size,
        policy,
        config if config is not None else "default",
        max_ops_per_thread,
        seed,
        settings,
        tuple(sorted(workload_overrides.items())),
    )
    result = _CACHE.get(key)
    if result is None:
        workload = make_workload(name, size, seed=seed, **workload_overrides)
        result = run_workload(workload, policy, config, max_ops_per_thread)
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()
