"""Shared experiment runner with result memoization.

Several figures consume the same underlying runs (Fig. 6's speedups and
Fig. 7's traffic and Fig. 12's energy all come from the same simulations),
so the runner memoizes RunResults by their full parameterization.

Environment knobs (for quick or exhaustive regeneration):

* ``REPRO_BENCH_OPS`` — operations per thread per run (default 8000);
* ``REPRO_BENCH_MIXES`` — multiprogrammed mixes for Fig. 9 (default 24,
  paper used 200).
"""

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.dispatch import DispatchPolicy
from repro.system.config import SystemConfig, scaled_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload


@dataclass(frozen=True)
class BenchSettings:
    """Global defaults for all benchmark experiments."""

    max_ops_per_thread: int = int(os.environ.get("REPRO_BENCH_OPS", 8000))
    n_mixes: int = int(os.environ.get("REPRO_BENCH_MIXES", 24))
    seed: int = 42


SETTINGS = BenchSettings()

_CACHE: Dict[Tuple, RunResult] = {}


def run_workload(
    workload: Workload,
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
) -> RunResult:
    """Run an already-constructed workload on a fresh system (uncached)."""
    system = System(config if config is not None else scaled_config(), policy)
    if max_ops_per_thread is None:
        max_ops_per_thread = SETTINGS.max_ops_per_thread
    return system.run(workload, max_ops_per_thread=max_ops_per_thread)


def run_config(
    name: str,
    size: str,
    policy: DispatchPolicy,
    config: Optional[SystemConfig] = None,
    max_ops_per_thread: Optional[int] = None,
    seed: Optional[int] = None,
    **workload_overrides,
) -> RunResult:
    """Run a registry workload under one configuration (memoized)."""
    if seed is None:
        seed = SETTINGS.seed
    if max_ops_per_thread is None:
        max_ops_per_thread = SETTINGS.max_ops_per_thread
    key = (
        name,
        size,
        policy,
        config if config is not None else "default",
        max_ops_per_thread,
        seed,
        tuple(sorted(workload_overrides.items())),
    )
    result = _CACHE.get(key)
    if result is None:
        workload = make_workload(name, size, seed=seed, **workload_overrides)
        result = run_workload(workload, policy, config, max_ops_per_thread)
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()
