"""Content-addressed on-disk result cache for benchmark runs.

Gem5-style simulation campaigns shard configuration points across processes
and persist per-config results so a re-run never repays simulation cost;
this module is that persistence layer.  A result is stored under a
fingerprint that covers everything the simulation depends on:

* the resolved :class:`~repro.bench.frontier.RunRequest` — workload specs
  with seeds and overrides, the dispatch policy, the *frozen*
  :class:`~repro.system.config.SystemConfig` (via
  :meth:`~repro.system.config.SystemConfig.fingerprint`), and the
  operation cap the BenchSettings resolved to; and
* a **code-version salt** hashed over every ``repro`` source file, so
  results persisted by an older simulator are unreachable (not merely
  suspect) after any code change.

Layout: ``<root>/v-<salt>/<fp[:2]>/<fp>.json`` — the salt level makes stale
generations trivially identifiable and removable, and the two-hex fan-out
keeps directories small on thousand-point sweeps.  Writes go through a
temp-file + ``os.replace`` so concurrent workers and interrupted runs can
never publish a torn entry.
"""

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional

import repro
from repro.obs.events import NULL_LEDGER
from repro.system.result import RunResult
# Re-exported: the bench layer's historical home for the atomic-publish
# helper; the implementation lives with its sibling primitives in util.
from repro.util.fsio import atomic_write_json

__all__ = ["BenchCache", "DEFAULT_CACHE_DIR", "atomic_write_json",
           "code_version_salt"]

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".bench_cache"


@lru_cache(maxsize=1)
def _source_tree_digest() -> str:
    """Hash of every ``repro`` source file (path + contents)."""
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def code_version_salt() -> str:
    """The cache-key salt for the code version currently imported.

    ``REPRO_BENCH_SALT`` overrides the computed digest — useful in tests
    and for deliberately sharing a cache across known-compatible trees.
    """
    env = os.environ.get("REPRO_BENCH_SALT")  # simrace: ignore[RCE006] -- deliberate operator override; shapes cache keys only, never results
    if env:
        return env
    return _source_tree_digest()[:16]


class BenchCache:
    """Persistent request -> RunResult store keyed by content fingerprint."""

    def __init__(self, root, salt: Optional[str] = None):
        self.root = Path(root)
        self.salt = salt if salt is not None else code_version_salt()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Run-ledger sink; the runner swaps in a live RunLedger so every
        #: get/put emits its lifecycle event (disk_hit / cache_miss /
        #: result_persisted).  NULL_LEDGER keeps the default path free.
        self.ledger = NULL_LEDGER

    # ------------------------------------------------------------------

    def key(self, request) -> str:
        """The fingerprint of a resolved request under this cache's salt."""
        return request.fingerprint(self.salt)

    def path_for(self, key: str) -> Path:
        return self.root / f"v-{self.salt}" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------

    def get(self, request) -> Optional[RunResult]:
        """The cached result for ``request``, or None (counted as a miss)."""
        path = self.path_for(self.key(request))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            # Absent, unreadable, or torn by an interrupted writer from a
            # pre-atomic-rename generation: treat all three as a miss.
            self.misses += 1
            if self.ledger.enabled:
                self.ledger.emit("cache_miss",
                                 fingerprint=request.event_fingerprint())
            return None
        self.hits += 1
        if self.ledger.enabled:
            self.ledger.emit("disk_hit",
                             fingerprint=request.event_fingerprint())
        return RunResult.from_dict(payload["result"])

    def put(self, request, result: RunResult) -> Path:
        """Persist ``result`` under ``request``'s fingerprint (atomic)."""
        key = self.key(request)
        payload = {
            "fingerprint": key,
            "salt": self.salt,
            "request": request.describe(),
            "result": result.to_dict(),
        }
        path = atomic_write_json(self.path_for(key), payload)
        self.stores += 1
        if self.ledger.enabled:
            self.ledger.emit("result_persisted",
                             fingerprint=request.event_fingerprint(),
                             path=path.name)
        return path

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        generation = self.root / f"v-{self.salt}"
        if not generation.is_dir():
            return 0
        return sum(1 for _ in generation.rglob("*.json"))

    def counters(self) -> Dict[str, int]:
        """Hit/miss/store counts for this cache handle's lifetime."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}
