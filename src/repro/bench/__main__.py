"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.bench list
    python -m repro.bench run fig8
    python -m repro.bench run all --jobs 4
    python -m repro.bench run fig10 --telemetry telemetry-out
    python -m repro.bench run smoke --jobs 2 --cache-dir .bench_cache
    python -m repro.bench sweep fig8-crossover --points 1024 --jobs 4
    python -m repro.bench history --assert-warm

``sweep`` runs a registered design-space sweep (see
:mod:`repro.bench.sweep`): adaptive grid refinement under a hard
evaluation budget, trace-affinity sharding across workers, and a
checkpoint under ``--history-dir`` that lets a killed sweep resume with
zero re-simulation.  The trajectory record it appends carries a ``sweep``
block (points evaluated, crossover, points/sec) that ``history
--compare`` prints and the dashboard renders.

Results are printed and, with ``--out DIR``, persisted one text file per
experiment.  ``--telemetry [DIR]`` additionally writes a full observability
bundle (interval time-series JSONL, Chrome trace JSON, run summary) per
simulated run; inspect with ``python -m repro.obs report <stem>.run.json``.
``--events [FILE]`` records the frontier run ledger (one JSONL event per
request lifecycle edge; see :mod:`repro.obs.events`) and ``--progress``
renders a live progress line from the same stream; render either into an
HTML report with ``python -m repro.obs dashboard <history-dir>``.

Every ``run`` fans independent simulation points across ``--jobs`` worker
processes, serves repeats from a content-addressed disk cache (default
``.bench_cache/``; ``--no-cache`` disables it), and appends a
``BENCH_<runid>.json`` trajectory record — wall-clock per experiment,
simulated ops/sec, cache hit counts, and an engine microbenchmark reading —
under ``--history-dir`` (default ``bench-history/``).  Workloads are
captured once per (input, seed) into compiled traces that replay across
every policy/config of a sweep; the traces persist under
``<cache-dir>/traces`` even with ``--no-cache``.  ``history`` summarizes
the records; ``--assert-warm`` exits non-zero unless the latest run
performed zero simulations (CI's warm-path proof), and ``--compare`` exits
non-zero if the latest engine throughput regressed more than 20% against
the best earlier record (CI's perf-smoke gate; see docs/performance.md).
"""

import argparse
import pathlib
import sys
import time

from repro.bench import experiments, runner
from repro.bench.cache import DEFAULT_CACHE_DIR
from repro.util.fsio import atomic_write_text
from repro.bench.history import (
    BenchTrajectory,
    compare_engine,
    format_observability,
    format_sweep,
    latest_record,
    load_records,
    settings_dict,
)
from repro.bench.sweep import SWEEPS, SweepRunner

EXPERIMENTS = {
    "fig2": experiments.fig2_pagerank_potential,
    "fig6": experiments.fig6_speedup,
    "fig7": experiments.fig7_offchip_traffic,
    "fig8": experiments.fig8_input_size_sweep,
    "fig9": experiments.fig9_multiprogrammed,
    "fig10": experiments.fig10_balanced_dispatch,
    "fig11a": experiments.fig11a_operand_buffer,
    "fig11b": experiments.fig11b_issue_width,
    "sec76": experiments.sec76_pmu_overhead,
    "fig12": experiments.fig12_energy,
    "smoke": experiments.smoke_suite,
}

#: ``run all`` regenerates the paper figures; the smoke suite is a CI/runner
#: check, not part of the paper, so it only runs when named explicitly.
NOT_IN_ALL = ("smoke",)

DEFAULT_HISTORY_DIR = "bench-history"


class ProgressRenderer:
    """Live one-line progress view over the run-ledger event stream.

    Attach :meth:`tick` as the ledger listener: planning events grow the
    denominator, cache hits and ``simulate_end`` events grow the numerator,
    and in-flight simulations (``simulate_start`` without a matching end)
    show as "simulating".  The ETA extrapolates the mean simulate duration
    over the remaining requests, divided by the worker count.  Writes a
    ``\\r``-rewritten line per event; call :meth:`close` to finish the line.
    """

    def __init__(self, jobs: int = 1, stream=None):
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stdout
        self.planned = 0
        self.cached = 0
        self.simulated = 0
        self.running = 0
        self.sim_seconds = 0.0
        self._width = 0

    def tick(self, event) -> None:
        kind = event.get("kind")
        if kind == "request_planned":
            self.planned += 1
        elif kind in ("memo_hit", "disk_hit"):
            self.cached += 1
        elif kind == "simulate_start":
            self.running += 1
        elif kind == "simulate_end":
            self.running = max(0, self.running - 1)
            self.simulated += 1
            self.sim_seconds += float(event.get("dur_s", 0.0))
        else:
            return
        self._render()

    def _render(self) -> None:
        done = self.cached + self.simulated
        total = max(self.planned, done)
        line = (f"[bench] {done}/{total} done "
                f"({self.cached} cached, {self.simulated} simulated, "
                f"{self.running} simulating)")
        remaining = total - done
        if remaining > 0 and self.simulated:
            eta = (remaining * (self.sim_seconds / self.simulated)
                   / self.jobs)
            line += f" eta {eta:.0f}s"
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        if self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0


def _add_run_parser(sub) -> None:
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--out", type=pathlib.Path, default=None,
                     help="directory to write <experiment>.txt files into")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for independent simulation "
                     "points (default: 1, serial)")
    run.add_argument("--cache-dir", type=pathlib.Path,
                     default=pathlib.Path(DEFAULT_CACHE_DIR), metavar="DIR",
                     help="on-disk result cache location "
                     f"(default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk result cache (captured "
                     "workload traces stay cached: a re-simulation never "
                     "needs to re-run the functional algorithms)")
    run.add_argument("--no-microbench", action="store_true",
                     help="skip the engine microbenchmark normally embedded "
                     "in the trajectory record")
    run.add_argument("--history-dir", type=pathlib.Path,
                     default=pathlib.Path(DEFAULT_HISTORY_DIR), metavar="DIR",
                     help="directory for BENCH_<runid>.json trajectory "
                     f"records (default: {DEFAULT_HISTORY_DIR})")
    run.add_argument("--telemetry", nargs="?", const="telemetry",
                     default=None, metavar="DIR",
                     help="write per-run telemetry bundles (interval JSONL, "
                     "Chrome trace, run summary) into DIR "
                     "(default: ./telemetry)")
    run.add_argument("--events", nargs="?", const="auto", default=None,
                     metavar="FILE",
                     help="record the run ledger (one JSONL event per "
                     "request lifecycle edge) to FILE (default: "
                     "<history-dir>/EVENTS_<runid>.jsonl)")
    run.add_argument("--progress", action="store_true",
                     help="live progress line driven by the run ledger "
                     "(done/cached/simulating counts and an ETA)")


def _add_sweep_parser(sub) -> None:
    sweep = sub.add_parser(
        "sweep", help="adaptive design-space sweep (resumable, sharded)")
    sweep.add_argument("sweep", choices=sorted(SWEEPS),
                       help="registered sweep name")
    sweep.add_argument("--points", type=int, default=1024, metavar="N",
                       help="full grid resolution (default: 1024); adaptive "
                       "sampling evaluates only the interesting fraction")
    sweep.add_argument("--full", action="store_true",
                       help="evaluate the entire grid exhaustively instead "
                       "of adaptively (the ground-truth mode)")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1, serial)")
    sweep.add_argument("--schedule", choices=("affinity", "fifo"),
                       default="affinity",
                       help="parallel dispatch: 'affinity' shards points by "
                       "shared trace so workers reuse decoded traces and "
                       "compiled plans; 'fifo' is completion-order scatter "
                       "(default: affinity)")
    sweep.add_argument("--checkpoint", type=pathlib.Path, default=None,
                       metavar="FILE",
                       help="sweep checkpoint path (default: "
                       "<history-dir>/SWEEP_<name>.json); a killed sweep "
                       "resumes from it with zero re-simulation")
    sweep.add_argument("--fresh", action="store_true",
                       help="ignore (and overwrite) any existing checkpoint; "
                       "cached results still serve, so a fresh pass over a "
                       "warm cache simulates nothing")
    sweep.add_argument("--cache-dir", type=pathlib.Path,
                       default=pathlib.Path(DEFAULT_CACHE_DIR), metavar="DIR",
                       help="on-disk result cache location "
                       f"(default: {DEFAULT_CACHE_DIR})")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache (disables "
                       "warm restarts too)")
    sweep.add_argument("--history-dir", type=pathlib.Path,
                       default=pathlib.Path(DEFAULT_HISTORY_DIR),
                       metavar="DIR",
                       help="directory for BENCH_<runid>.json records "
                       f"(default: {DEFAULT_HISTORY_DIR})")
    sweep.add_argument("--no-microbench", action="store_true",
                       help="skip the engine microbenchmark normally "
                       "embedded in the trajectory record")


def _add_history_parser(sub) -> None:
    hist = sub.add_parser(
        "history", help="summarize BENCH_* trajectory records")
    hist.add_argument("--history-dir", type=pathlib.Path,
                      default=pathlib.Path(DEFAULT_HISTORY_DIR),
                      metavar="DIR")
    hist.add_argument("--assert-warm", action="store_true",
                      help="exit 1 unless the latest record shows zero "
                      "simulations (everything cache-served)")
    hist.add_argument("--compare", action="store_true",
                      help="exit 1 if the latest record's engine throughput "
                      "regressed >20%% against the best earlier record")


def _cmd_run(args) -> int:
    runner.set_jobs(args.jobs)
    if args.no_cache:
        runner.disable_disk_cache()
        cache_info = {"enabled": False}
    else:
        cache = runner.enable_disk_cache(args.cache_dir)
        cache_info = {"enabled": True, "dir": str(cache.root),
                      "salt": cache.salt}
    # Captured traces persist under the cache dir even with --no-cache:
    # disabling the *result* cache forces re-simulation, which never
    # requires re-running the functional workloads.
    runner.enable_trace_cache(args.cache_dir / "traces")
    if args.telemetry is not None:
        telemetry_dir = runner.enable_telemetry(pathlib.Path(args.telemetry))
        print(f"telemetry bundles -> {telemetry_dir}")
    progress = ProgressRenderer(jobs=args.jobs) if args.progress else None
    ledger = None
    if args.progress or args.events is not None:
        ledger = runner.enable_run_ledger(
            listener=progress.tick if progress is not None else None)

    if args.experiment == "all":
        names = [n for n in sorted(EXPERIMENTS) if n not in NOT_IN_ALL]
    else:
        names = [args.experiment]

    trajectory = BenchTrajectory(
        jobs=args.jobs, cache_info=cache_info,
        settings=settings_dict(runner.current_settings()))
    for name in names:
        before = runner.accounting().snapshot()
        t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness wall-clock for the trajectory record; never feeds simulated time
        report = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - t0  # simlint: ignore[SIM001] -- harness wall-clock for the trajectory record; never feeds simulated time
        entry = trajectory.record(name, elapsed,
                                  before, runner.accounting().snapshot())
        if progress is not None:
            progress.close()
        print(report)
        print(f"[{name}: {entry['wall_seconds']:.2f}s wall, "
              f"{entry['simulations']:.0f} simulated, "
              f"{entry['memo_hits']:.0f} memo / "
              f"{entry['disk_hits']:.0f} disk hits]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            atomic_write_text(args.out / f"{name}.txt", str(report) + "\n")
    cache = runner.disk_cache()
    if cache is not None:
        trajectory.cache_info.update(cache.counters())
    trajectory.cache_info["traces"] = runner.trace_store().counters()
    trajectory.observability = runner.frontier_summary()
    if ledger is not None:
        trajectory.observability["events"] = ledger.counts()
        if args.events is not None:
            events_path = (
                args.history_dir / f"EVENTS_{trajectory.runid}.jsonl"
                if args.events == "auto" else pathlib.Path(args.events))
            ledger.write_jsonl(events_path)
            print(f"run ledger -> {events_path} ({len(ledger)} events)")
    if not args.no_microbench:
        from repro.bench.microbench import engine_ops_per_second
        trajectory.engine = engine_ops_per_second()
        print(f"engine: {trajectory.engine['ops_per_second']:,.0f} ops/s "
              f"({trajectory.engine['ms_per_run']:.1f} ms/run, best of "
              f"{trajectory.engine['rounds']:.0f})")
    path = trajectory.write(args.history_dir)
    totals = trajectory.payload()["totals"]
    print(f"trajectory -> {path} "
          f"({totals['simulations']:.0f} simulations, "
          f"{totals['disk_hits']:.0f} disk hits, "
          f"{totals['trace_captures']:.0f} trace captures, "
          f"{totals['wall_seconds']:.2f}s wall)")
    return 0


def _cmd_sweep(args) -> int:
    runner.set_jobs(args.jobs)
    runner.set_schedule(args.schedule)
    if args.no_cache:
        runner.disable_disk_cache()
        cache_info = {"enabled": False}
    else:
        cache = runner.enable_disk_cache(args.cache_dir)
        cache_info = {"enabled": True, "dir": str(cache.root),
                      "salt": cache.salt}
    runner.enable_trace_cache(args.cache_dir / "traces")

    spec = SWEEPS[args.sweep](args.points)
    checkpoint = (args.checkpoint if args.checkpoint is not None
                  else args.history_dir / f"SWEEP_{spec.name}.json")
    if args.fresh and checkpoint.exists():
        checkpoint.unlink()
    checkpoint.parent.mkdir(parents=True, exist_ok=True)

    trajectory = BenchTrajectory(
        jobs=args.jobs, cache_info=cache_info,
        settings=settings_dict(runner.current_settings()))
    before = runner.accounting().snapshot()
    t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness wall-clock for the trajectory record; never feeds simulated time
    report = SweepRunner(spec, checkpoint=checkpoint).run(full=args.full)
    elapsed = time.perf_counter() - t0  # simlint: ignore[SIM001] -- harness wall-clock for the trajectory record; never feeds simulated time
    trajectory.record(f"sweep:{spec.name}", elapsed,
                      before, runner.accounting().snapshot())
    trajectory.sweep = report
    for line in format_sweep({"sweep": report}):
        print(line.strip())
    cache = runner.disk_cache()
    if cache is not None:
        trajectory.cache_info.update(cache.counters())
    trajectory.cache_info["traces"] = runner.trace_store().counters()
    trajectory.observability = runner.frontier_summary()
    if not args.no_microbench:
        from repro.bench.microbench import engine_ops_per_second
        trajectory.engine = engine_ops_per_second()
        print(f"engine: {trajectory.engine['ops_per_second']:,.0f} ops/s "
              f"({trajectory.engine['ms_per_run']:.1f} ms/run, best of "
              f"{trajectory.engine['rounds']:.0f})")
    path = trajectory.write(args.history_dir)
    print(f"checkpoint -> {checkpoint}")
    print(f"trajectory -> {path} ({report['simulated']} simulations, "
          f"{report['evaluated']}/{report['grid_points']} points, "
          f"{report['points_per_second']:.1f} points/s)")
    return 0


def _cmd_history(args) -> int:
    records = load_records(args.history_dir)
    if not records:
        if args.compare and not args.assert_warm:
            # Satellite of the first sweep on a fresh machine / CI cache:
            # nothing to regress against is a clean pass, not a failure.
            print(f"no baseline yet: no BENCH_*.json records under "
                  f"{args.history_dir}; nothing to compare")
            return 0
        print(f"no BENCH_*.json records under {args.history_dir}")
        return 1
    for path, record in records:
        totals = record.get("totals", {})
        engine = record.get("engine", {})
        line = (f"{path.name}: jobs={record.get('jobs')} "
                f"sims={totals.get('simulations', 0):.0f} "
                f"disk_hits={totals.get('disk_hits', 0):.0f} "
                f"wall={totals.get('wall_seconds', 0.0):.2f}s "
                f"sim_ops/s={totals.get('sim_ops_per_second', 0.0):.0f}")
        if engine.get("ops_per_second"):
            line += f" engine_ops/s={engine['ops_per_second']:.0f}"
        print(line)
    if args.compare:
        ok, message = compare_engine(records)
        print(message)
        for line in format_observability(records[-1][1]):
            print(line)
        for line in format_sweep(records[-1][1]):
            print(line)
        if not ok:
            return 1
    if args.assert_warm:
        path, record = latest_record(args.history_dir)
        sims = record.get("totals", {}).get("simulations", 0)
        if sims:
            print(f"ASSERT-WARM FAILED: {path.name} ran "
                  f"{sims:.0f} simulations (expected 0)")
            return 1
        print(f"assert-warm OK: {path.name} served entirely from cache")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of the PEI paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    _add_run_parser(sub)
    _add_sweep_parser(sub)
    _add_history_parser(sub)
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} {summary}")
        for name in sorted(SWEEPS):
            summary = (SWEEPS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} (sweep) {summary}")
        return 0
    if args.command == "history":
        return _cmd_history(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
