"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.bench list
    python -m repro.bench run fig8
    python -m repro.bench run all
    python -m repro.bench run fig10 --telemetry telemetry-out

Results are printed and, with ``--out DIR``, persisted one text file per
experiment.  ``--telemetry [DIR]`` additionally writes a full observability
bundle (interval time-series JSONL, Chrome trace JSON, run summary) per
simulated run; inspect with ``python -m repro.obs report <stem>.run.json``.
"""

import argparse
import pathlib
import sys

from repro.bench import experiments, runner

EXPERIMENTS = {
    "fig2": experiments.fig2_pagerank_potential,
    "fig6": experiments.fig6_speedup,
    "fig7": experiments.fig7_offchip_traffic,
    "fig8": experiments.fig8_input_size_sweep,
    "fig9": experiments.fig9_multiprogrammed,
    "fig10": experiments.fig10_balanced_dispatch,
    "fig11a": experiments.fig11a_operand_buffer,
    "fig11b": experiments.fig11b_issue_width,
    "sec76": experiments.sec76_pmu_overhead,
    "fig12": experiments.fig12_energy,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of the PEI paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--out", type=pathlib.Path, default=None,
                     help="directory to write <experiment>.txt files into")
    run.add_argument("--telemetry", nargs="?", const="telemetry",
                     default=None, metavar="DIR",
                     help="write per-run telemetry bundles (interval JSONL, "
                     "Chrome trace, run summary) into DIR "
                     "(default: ./telemetry)")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} {summary}")
        return 0

    if args.telemetry is not None:
        telemetry_dir = runner.enable_telemetry(pathlib.Path(args.telemetry))
        print(f"telemetry bundles -> {telemetry_dir}")

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        report = EXPERIMENTS[name]()
        print(report)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(str(report) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
