"""Sweep-scale frontier: adaptive, resumable design-space sweeps.

The paper's figures sample a handful of hand-picked input sizes, but the
interesting structure — Fig. 8's host/PIM locality *crossover* — lives on
a continuous axis.  Resolving it exhaustively at 10k+-point resolution is
wasteful: the metric is smooth almost everywhere, and all the information
sits in a few high-gradient intervals.  This module turns such a sweep
into a first-class benchmark object:

* :class:`SweepSpec` — a frozen, fingerprinted description of the whole
  design space: one workload axis (e.g. ``n_values``), a grid of values,
  the policies to run per point, and the scalar metric whose threshold
  crossing the sweep is resolving.  ``requests_for(i)`` expands a grid
  point into resolved :class:`~repro.bench.frontier.RunRequest`\\ s, so
  every point flows through the runner's content-addressed caches exactly
  like a figure run.
* :class:`AdaptiveSampler` — deterministic, seeded grid refinement: start
  from a coarse subgrid, then repeatedly subdivide only the intervals
  that straddle the threshold or exceed the gradient tolerance, under a
  hard evaluation budget (``max_fraction`` of the full grid, default
  40%).  Same seed + same grid + same metric values ⇒ the identical
  refinement sequence, point for point (asserted by
  ``tests/bench/test_sweep.py``).
* :class:`SweepState` — a checkpoint (``repro.bench.sweep/1``, written
  atomically after every round) holding the spec fingerprint and the
  per-round evaluated indices and metrics.  A killed sweep resumes by
  replaying the recorded rounds through the sampler — re-evaluation is
  served entirely by the result cache, so a warm restart simulates zero
  points and the finished sweep is bit-identical to an uninterrupted one.
* :class:`SweepRunner` — drives rounds through :func:`repro.bench.runner.
  prefetch`, so each round's frontier fans across the worker pool with
  trace-affinity sharding (all policies of one grid point share a
  capture), and reports sweep throughput (points/sec) for the
  ``BENCH_<runid>.json`` trajectory.

``python -m repro.bench sweep fig8-crossover`` is the command-line face.
"""

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import runner
from repro.bench.cache import atomic_write_json, code_version_salt
from repro.bench.frontier import RunRequest
from repro.core.dispatch import DispatchPolicy
from repro.system.config import scaled_config, tiny_config
from repro.system.result import RunResult
from repro.util.rng import derive_seed

__all__ = [
    "SWEEP_SCHEMA",
    "SWEEPS",
    "AdaptiveSampler",
    "SweepError",
    "SweepSpec",
    "SweepState",
    "SweepRunner",
    "log_grid",
]

SWEEP_SCHEMA = "repro.bench.sweep/1"


class SweepError(RuntimeError):
    """A sweep-level failure: bad spec, stale checkpoint, metric mismatch."""


def log_grid(lo: int, hi: int, points: int) -> Tuple[int, ...]:
    """A log-spaced integer grid from ``lo`` to ``hi`` inclusive.

    Deduplicated and sorted; the realized grid may hold fewer than
    ``points`` entries when rounding collides at the small end.
    """
    if lo < 1 or hi <= lo or points < 2:
        raise ValueError(f"need 1 <= lo < hi and points >= 2, "
                         f"got lo={lo} hi={hi} points={points}")
    import math

    span = math.log(hi) - math.log(lo)
    raw = (round(math.exp(math.log(lo) + span * k / (points - 1)))
           for k in range(points))
    return tuple(sorted(set(int(v) for v in raw)))


# ----------------------------------------------------------------------
# Metrics: scalar per grid point, computed from the per-policy results
# ----------------------------------------------------------------------


def _metric_host_over_pim(results: Dict[str, RunResult]) -> float:
    """Host-only cycles over PIM-only cycles: >1 means PIM wins the point.

    This is Fig. 8's locality trade viewed as a ratio — small inputs fit
    on-chip (host wins, ratio < 1), large inputs stream from DRAM (PIM
    wins, ratio > 1); the 1.0 crossing is the crossover input size.
    """
    pim = results[DispatchPolicy.PIM_ONLY.value].cycles
    if pim <= 0:
        return 0.0
    return results[DispatchPolicy.HOST_ONLY.value].cycles / pim


def _metric_pim_fraction(results: Dict[str, RunResult]) -> float:
    """The locality-aware policy's memory-side execution fraction."""
    return results[DispatchPolicy.LOCALITY_AWARE.value].pim_fraction


#: metric name -> (extractor, policies run per grid point).  ``fig8`` runs
#: the figure's full policy trio per point — the host/PIM baselines ride
#: along with the locality-aware run (all three share the point's trace
#: capture, which is what trace-affinity sharding exploits) — and reports
#: the locality-aware PIM fraction, the figure's smooth "PIM %" curve.
#: ``host_over_pim`` is the two-policy cycle ratio; being a ratio of two
#: independently simulated runs it oscillates near 1.0 at small op caps,
#: so threshold sweeps should prefer ``fig8``/``pim_fraction``.
_METRICS: Dict[str, Tuple[Callable[[Dict[str, RunResult]], float],
                          Tuple[DispatchPolicy, ...]]] = {
    "host_over_pim": (_metric_host_over_pim,
                      (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY)),
    "pim_fraction": (_metric_pim_fraction, (DispatchPolicy.LOCALITY_AWARE,)),
    "fig8": (_metric_pim_fraction,
             (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
              DispatchPolicy.LOCALITY_AWARE)),
}

_CONFIGS = {"tiny": tiny_config, "scaled": scaled_config}


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """One fully pinned design-space sweep: grid, per-point runs, metric.

    Everything a point's simulation depends on is explicit (workload,
    size, axis values, seed, ops cap, config name), so the spec — like a
    resolved :class:`RunRequest` — is an environment-independent identity:
    its :meth:`fingerprint` guards checkpoints against spec or code drift.
    """

    name: str
    workload: str
    size: str
    axis: str
    values: Tuple[int, ...]
    metric: str = "host_over_pim"
    threshold: float = 1.0
    config: str = "tiny"
    seed: int = 7
    max_ops_per_thread: int = 2000

    def __post_init__(self):
        if self.metric not in _METRICS:
            raise SweepError(f"unknown sweep metric {self.metric!r}; "
                             f"choose from {sorted(_METRICS)}")
        if self.config not in _CONFIGS:
            raise SweepError(f"unknown sweep config {self.config!r}; "
                             f"choose from {sorted(_CONFIGS)}")
        if len(self.values) < 2:
            raise SweepError("a sweep grid needs at least 2 values")
        if list(self.values) != sorted(set(self.values)):
            raise SweepError("sweep grid values must be sorted and unique")

    @property
    def policies(self) -> Tuple[DispatchPolicy, ...]:
        return _METRICS[self.metric][1]

    def requests_for(self, index: int) -> List[RunRequest]:
        """The resolved requests of one grid point (one per policy).

        All of a point's requests share the workload spec, seed, config
        and ops cap — i.e. the same ``trace_request_key`` — so affinity
        scheduling lands them on one worker and the capture is paid once.
        """
        overrides = {self.axis: self.values[index]}
        return [
            RunRequest.single(
                self.workload, self.size, policy,
                config=_CONFIGS[self.config](),
                max_ops_per_thread=self.max_ops_per_thread,
                seed=self.seed, **overrides)
            for policy in self.policies
        ]

    def metric_from(self, results: Dict[str, RunResult]) -> float:
        return _METRICS[self.metric][0](results)

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "workload": self.workload,
            "size": self.size,
            "axis": self.axis,
            "values": list(self.values),
            "metric": self.metric,
            "threshold": self.threshold,
            "config": self.config,
            "seed": self.seed,
            "max_ops_per_thread": self.max_ops_per_thread,
        }

    def fingerprint(self) -> str:
        """Content hash of the spec, mixed with the code-version salt.

        The salt means a checkpoint can never steer a sweep across a
        simulator change — exactly the staleness rule the result cache
        applies per point.
        """
        payload = json.dumps({"salt": code_version_salt(),
                              "spec": self.describe()}, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# AdaptiveSampler
# ----------------------------------------------------------------------


class AdaptiveSampler:
    """Deterministic coarse-to-fine refinement over a value grid.

    Round 0 evaluates an evenly spaced subgrid (endpoints always
    included).  Each later round subdivides only the *interesting*
    intervals between adjacent evaluated indices:

    * intervals whose endpoint metrics straddle ``threshold`` (a sign
      change — the crossover lives inside) always refine, first;
    * intervals whose metric delta exceeds ``rel_threshold`` of the
      globally observed metric range refine next (high gradient);
    * everything else is left at coarse resolution.

    Subdivision picks the midpoint index, so a straddling interval halves
    every round — the crossover is pinned to *adjacent grid indices* in
    O(log n) rounds, which is why a ≤``max_fraction`` budget resolves the
    same crossover an exhaustive sweep finds.  Ordering among equal
    priorities is decided by a :func:`~repro.util.rng.derive_seed` key, so
    the full round sequence is a pure function of (seed, grid, metrics).
    """

    def __init__(self, n: int, seed: int, init_points: int = 9,
                 rel_threshold: float = 0.08, max_fraction: float = 0.40,
                 threshold: float = 1.0):
        if n < 2:
            raise SweepError("sampler needs a grid of at least 2 points")
        self.n = n
        self.seed = seed
        self.init_points = max(2, min(init_points, n))
        self.rel_threshold = rel_threshold
        self.threshold = threshold
        self.budget = max(self.init_points, int(max_fraction * n))
        self.metrics: Dict[int, float] = {}
        self.rounds = 0
        #: Per-round evaluated indices, in evaluation order (feeds the
        #: dashboard's refinement strip and the checkpoint replay).
        self.history: List[List[int]] = []

    # ------------------------------------------------------------------

    def first_round(self) -> List[int]:
        """The coarse subgrid: ``init_points`` even indices incl. ends."""
        k = self.init_points
        indices = sorted({round(i * (self.n - 1) / (k - 1))
                          for i in range(k)})
        return [int(i) for i in indices]

    def record(self, index: int, metric: float) -> None:
        self.metrics[index] = metric

    def record_round(self, indices: Sequence[int],
                     metrics: Sequence[float]) -> None:
        for index, metric in zip(indices, metrics):
            self.record(index, metric)
        self.history.append([int(i) for i in indices])
        self.rounds += 1

    # ------------------------------------------------------------------

    def _intervals(self) -> List[Tuple[int, int]]:
        """Adjacent evaluated index pairs with unevaluated gaps between."""
        evaluated = sorted(self.metrics)
        return [(i, j) for i, j in zip(evaluated, evaluated[1:]) if j - i > 1]

    def _priority(self, lo: int, hi: int, spread: float) -> int:
        a = self.metrics[lo] - self.threshold
        b = self.metrics[hi] - self.threshold
        if a == 0.0 or b == 0.0 or (a < 0) != (b < 0):
            return 2  # Straddles the threshold: the crossover is inside.
        if spread > 0 and abs(self.metrics[hi] - self.metrics[lo]) \
                > self.rel_threshold * spread:
            return 1  # High gradient: the curve is doing something here.
        return 0

    def next_round(self) -> List[int]:
        """Indices to evaluate next (empty = converged or out of budget)."""
        remaining = self.budget - len(self.metrics)
        if remaining <= 0:
            return []
        values = list(self.metrics.values())
        spread = max(values) - min(values)
        candidates = []
        for lo, hi in self._intervals():
            priority = self._priority(lo, hi, spread)
            if priority == 0:
                continue
            mid = (lo + hi) // 2
            candidates.append((-priority,
                               derive_seed(self.seed, self.rounds, lo, hi),
                               mid))
        candidates.sort()
        picked: List[int] = []
        seen = set()
        for _, _, mid in candidates:
            if len(picked) >= remaining:
                break
            if mid in seen or mid in self.metrics:
                continue
            seen.add(mid)
            picked.append(mid)
        return sorted(picked)

    # ------------------------------------------------------------------

    def crossover(self) -> Optional[Tuple[int, int]]:
        """The tightest evaluated index pair straddling the threshold."""
        evaluated = sorted(self.metrics)
        best: Optional[Tuple[int, int]] = None
        for lo, hi in zip(evaluated, evaluated[1:]):
            a = self.metrics[lo] - self.threshold
            b = self.metrics[hi] - self.threshold
            if a == 0.0 or b == 0.0 or (a < 0) != (b < 0):
                if best is None or hi - lo < best[1] - best[0]:
                    best = (lo, hi)
        return best


# ----------------------------------------------------------------------
# SweepState: the on-disk checkpoint
# ----------------------------------------------------------------------


@dataclass
class SweepState:
    """Checkpointed sweep progress: per-round indices and metric values.

    Written atomically after every completed round, so a kill at any
    moment leaves either the previous round's state or the new one —
    never a torn file.  On resume the recorded rounds are *replayed*
    through a fresh sampler (which must plan the identical indices — the
    sampler is deterministic) and the recorded metrics are checked
    against the re-derived ones, so a stale cache or changed spec fails
    loudly instead of silently steering refinement.
    """

    fingerprint: str
    rounds: List[List[int]] = field(default_factory=list)
    metrics: List[List[float]] = field(default_factory=list)

    def payload(self) -> Dict:
        return {
            "schema": SWEEP_SCHEMA,
            "fingerprint": self.fingerprint,
            "rounds": self.rounds,
            "metrics": self.metrics,
        }

    def write(self, path) -> Path:
        return atomic_write_json(Path(path), self.payload(), indent=2)

    @classmethod
    def load(cls, path, fingerprint: str) -> Optional["SweepState"]:
        """Read a checkpoint; None when absent, stale, or unreadable.

        A checkpoint from a different spec or code version is *discarded*
        (the sweep restarts cleanly) rather than an error — resuming is an
        optimization, never a correctness requirement.
        """
        try:
            with open(Path(path), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != SWEEP_SCHEMA:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        rounds = payload.get("rounds", [])
        metrics = payload.get("metrics", [])
        if len(rounds) != len(metrics):
            return None
        return cls(fingerprint=fingerprint,
                   rounds=[[int(i) for i in r] for r in rounds],
                   metrics=[[float(m) for m in r] for r in metrics])


# ----------------------------------------------------------------------
# SweepRunner
# ----------------------------------------------------------------------


class SweepRunner:
    """Drives a spec's rounds through the shared runner (cache + pool).

    Each round's grid points expand to requests and go through
    :func:`repro.bench.runner.prefetch` as one frontier — parallel
    workers get trace-affine shards, cached points cost nothing — then
    the per-point metrics feed the sampler, the checkpoint is published,
    and the next round is planned.  ``stop_after_rounds`` bounds a run
    mid-sweep (the kill/resume tests use it); the returned report marks
    ``completed`` accordingly.
    """

    def __init__(self, spec: SweepSpec, init_points: int = 9,
                 rel_threshold: float = 0.08, max_fraction: float = 0.40,
                 checkpoint: Optional[Path] = None):
        self.spec = spec
        self.init_points = init_points
        self.rel_threshold = rel_threshold
        self.max_fraction = max_fraction
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None

    # ------------------------------------------------------------------

    def _evaluate_round(self, indices: Sequence[int]) -> List[float]:
        """Simulate one round's grid points; return their metrics in order."""
        spec = self.spec
        frontier: List[RunRequest] = []
        per_point: List[List[RunRequest]] = []
        for index in indices:
            requests = spec.requests_for(index)
            per_point.append(requests)
            frontier.extend(requests)
        runner.prefetch(frontier)
        metrics = []
        for requests in per_point:
            results = {request.policy.value: runner.run_request(request)
                       for request in requests}
            metrics.append(spec.metric_from(results))
        return metrics

    def _resume_state(self) -> SweepState:
        fingerprint = self.spec.fingerprint()
        if self.checkpoint is not None:
            state = SweepState.load(self.checkpoint, fingerprint)
            if state is not None:
                return state
        return SweepState(fingerprint=fingerprint)

    # ------------------------------------------------------------------

    def run(self, full: bool = False,
            stop_after_rounds: Optional[int] = None) -> Dict:
        """Run (or resume) the sweep; return its report dict.

        ``full=True`` evaluates the entire grid in one exhaustive round —
        the ground-truth mode the adaptive result is validated against.
        """
        spec = self.spec
        t0 = time.perf_counter()  # simlint: ignore[SIM001] -- sweep wall-clock throughput accounting; never feeds simulated time
        accounting0 = runner.accounting().snapshot()
        sampler = AdaptiveSampler(
            n=len(spec.values), seed=spec.seed,
            init_points=self.init_points,
            rel_threshold=self.rel_threshold,
            max_fraction=1.0 if full else self.max_fraction,
            threshold=spec.threshold)
        state = self._resume_state() if not full else SweepState(
            fingerprint=spec.fingerprint())
        resumed_rounds = len(state.rounds)
        completed = True
        round_no = 0
        planned = (list(range(len(spec.values))) if full
                   else sampler.first_round())
        while planned:
            if round_no < len(state.rounds):
                if state.rounds[round_no] != list(planned):
                    raise SweepError(
                        f"checkpoint round {round_no} evaluated indices "
                        f"{state.rounds[round_no]} but the sampler plans "
                        f"{list(planned)} — checkpoint does not match this "
                        f"sweep (delete it or pass --fresh)")
            metrics = self._evaluate_round(planned)
            if round_no < len(state.rounds):
                if state.metrics[round_no] != metrics:
                    raise SweepError(
                        f"checkpoint round {round_no} metrics diverge from "
                        f"re-derived values — stale checkpoint (delete it "
                        f"or pass --fresh)")
            else:
                state.rounds.append(list(planned))
                state.metrics.append(list(metrics))
                if self.checkpoint is not None and not full:
                    state.write(self.checkpoint)
            sampler.record_round(planned, metrics)
            round_no += 1
            if full:
                break
            if stop_after_rounds is not None and round_no >= stop_after_rounds:
                completed = not sampler.next_round()
                break
            planned = sampler.next_round()
        elapsed = time.perf_counter() - t0  # simlint: ignore[SIM001] -- sweep wall-clock throughput accounting; never feeds simulated time
        return self._report(sampler, elapsed, accounting0,
                            completed=completed, full=full,
                            resumed_rounds=resumed_rounds)

    # ------------------------------------------------------------------

    def _report(self, sampler: AdaptiveSampler, elapsed: float,
                accounting0: Dict, completed: bool, full: bool,
                resumed_rounds: int) -> Dict:
        spec = self.spec
        accounting1 = runner.accounting().snapshot()
        simulated = int(accounting1["simulations"]
                        - accounting0["simulations"])
        evaluated = sorted(sampler.metrics)
        pair = sampler.crossover()
        crossover = None
        if pair is not None:
            lo, hi = pair
            crossover = {
                "below_index": lo, "above_index": hi,
                "below": spec.values[lo], "above": spec.values[hi],
                "exact": hi - lo == 1,
            }
        return {
            "schema": SWEEP_SCHEMA,
            "name": spec.name,
            "spec": spec.describe(),
            "fingerprint": spec.fingerprint(),
            "grid_points": len(spec.values),
            "evaluated": len(evaluated),
            "evaluated_fraction": len(evaluated) / len(spec.values),
            "simulated": simulated,
            "rounds": sampler.rounds,
            "resumed_rounds": resumed_rounds,
            "completed": completed,
            "full": full,
            "metric": spec.metric,
            "threshold": spec.threshold,
            "crossover": crossover,
            "wall_seconds": elapsed,
            "points_per_second": (len(evaluated) / elapsed
                                  if elapsed > 0 else 0.0),
            "rounds_points": [list(r) for r in sampler.history],
            "points": [
                {"index": index, "value": spec.values[index],
                 "metric": sampler.metrics[index]}
                for index in evaluated
            ],
        }


# ----------------------------------------------------------------------
# Registry: named sweeps for the CLI and CI
# ----------------------------------------------------------------------


def _fig8_crossover(points: int) -> SweepSpec:
    """Fig. 8's locality crossover as a sweep: HG input size vs PIM %.

    Small histograms fit in the host cache hierarchy, so the locality
    monitor keeps PEIs host-side; large ones stream from DRAM and the
    monitor pushes execution to the memory-side PCUs.  The locality-aware
    PIM fraction rises monotonically with input size and crosses 0.5
    between 16k and 32k values under the tiny config at a 2000-op cap —
    the sweep resolves that crossing to grid resolution, with the
    host-only/PIM-only baselines simulated alongside at every point.
    """
    return SweepSpec(
        name="fig8-crossover",
        workload="HG",
        size="small",
        axis="n_values",
        values=log_grid(1000, 64000, points),
        metric="fig8",
        threshold=0.5,
        config="tiny",
        seed=7,
        max_ops_per_thread=2000,
    )


#: name -> factory(points). The CLI's ``python -m repro.bench sweep <name>``.
SWEEPS: Dict[str, Callable[[int], SweepSpec]] = {
    "fig8-crossover": _fig8_crossover,
}
