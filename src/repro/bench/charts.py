"""ASCII bar charts for figure-style benchmark output.

The paper's figures are grouped bar charts; rendering the regenerated data
the same way makes shape comparisons (who wins, where the crossover falls)
readable directly in a terminal or a results file.
"""

from typing import Dict, List, Optional, Sequence

FULL, PARTIALS = "█", " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = max(0.0, value) / scale * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    bar = FULL * whole
    if frac and whole < width:
        bar += PARTIALS[frac]
    return bar


def bar_chart(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    baseline: Optional[float] = None,
    title: str = "",
) -> str:
    """Render grouped horizontal bars.

    ``series`` maps a series name (e.g. a configuration) to one value per
    label (e.g. a workload).  If ``baseline`` is given, a marker column is
    drawn at that value (the paper's figures normalize to Ideal-Host = 1).
    """
    if not series:
        return title
    peak = max(max(values) for values in series.values())
    if baseline is not None:
        peak = max(peak, baseline)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(str(l)) for l in labels)
    name_w = max(len(name) for name in series)
    marker = None
    if baseline is not None:
        marker = int(baseline / peak * width)
    lines: List[str] = [title] if title else []
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            bar = _bar(values[i], peak, width)
            row = list(bar.ljust(width + 1))
            if marker is not None and marker <= width:
                if row[marker] == " ":
                    row[marker] = "|"
            prefix = str(label).ljust(label_w) if j == 0 else " " * label_w
            lines.append(
                f"{prefix}  {name.ljust(name_w)} {''.join(row)} {values[i]:.3f}"
            )
        lines.append("")
    if baseline is not None:
        lines.append(f"('|' marks the {baseline:g} baseline)")
    return "\n".join(lines).rstrip()
