"""Ablation experiments beyond the paper's figures.

These probe the design choices DESIGN.md calls out and the extension the
paper explicitly leaves as future work (Section 7.4: balanced dispatch on
systems with other request/response bandwidth splits).
"""

from typing import Sequence

from repro.bench.experiments import ExperimentReport
from repro.bench.runner import run_config
from repro.bench.tables import format_table, geometric_mean
from repro.core.dispatch import DispatchPolicy
from repro.system.config import scaled_config

P = DispatchPolicy


def ablation_ignore_flag(workloads: Sequence[str] = ("PR", "ATF", "HG"),
                         sizes: Sequence[str] = ("small", "large")) -> ExperimentReport:
    """The locality monitor's 1-bit ignore flag (Section 4.3).

    Without it, the *first* monitor hit of a PIM-allocated entry already
    advises host execution, prematurely pulling streamed blocks on chip.
    Expectation: disabling the flag hurts (or at best matches) streaming
    workloads and never helps much.
    """
    rows = []
    data = {}
    for size in sizes:
        for name in workloads:
            with_flag = run_config(name, size, P.LOCALITY_AWARE)
            without = run_config(
                name, size, P.LOCALITY_AWARE,
                config=scaled_config(locality_monitor_ignore_flag=False),
            )
            ratio = without.cycles / with_flag.cycles
            rows.append([f"{name}-{size}", ratio,
                         f"{100 * with_flag.pim_fraction:.0f}%",
                         f"{100 * without.pim_fraction:.0f}%"])
            data[f"{name}-{size}"] = ratio
    text = format_table(
        ["workload", "slowdown w/o ignore flag", "PIM% with", "PIM% without"],
        rows,
        title="Ablation: locality-monitor ignore flag",
    )
    return ExperimentReport("ablation_ignore_flag", text, data)


def ablation_directory_size(entries: Sequence[int] = (64, 256, 2048, 8192),
                            workloads: Sequence[str] = ("PR", "ATF", "HJ")) -> ExperimentReport:
    """PIM directory sizing: false-positive serialization vs storage.

    The paper picks 2048 entries (3.25 KB).  Smaller tables fold more
    distinct blocks onto the same reader-writer lock; the cost should stay
    small until the table gets tiny.
    """
    rows = []
    data = {}
    for n in entries:
        speedups = []
        for name in workloads:
            base = run_config(name, "large", P.LOCALITY_AWARE)
            swept = run_config(name, "large", P.LOCALITY_AWARE,
                               config=scaled_config(pim_directory_entries=n))
            speedups.append(base.cycles / swept.cycles)
        gm = geometric_mean(speedups)
        rows.append([n, gm, f"{n * 13 / 8 / 1024:.2f} KB"])
        data[n] = gm
    text = format_table(
        ["entries", "speedup vs 2048-entry", "storage"],
        rows,
        title="Ablation: PIM directory size",
    )
    return ExperimentReport("ablation_directory_size", text, data)


def ablation_link_asymmetry(ratios: Sequence[float] = (0.5, 1.0, 2.0),
                            workloads: Sequence[str] = ("SC", "SVM")) -> ExperimentReport:
    """Balanced dispatch under asymmetric request/response bandwidth.

    Section 7.4 leaves generalizing balanced dispatch to other
    request/response channel splits (buffer-on-board systems) as future
    work; this ablation sweeps the response:request bandwidth ratio at
    constant total bandwidth and measures the balanced-dispatch gain.
    Expectation: the gain persists across splits, growing when the
    direction a workload saturates is the narrower one.
    """
    total = 20.0  # bytes/cycle across both directions
    rows = []
    data = {}
    for ratio in ratios:
        response = total * ratio / (1.0 + ratio)
        request = total - response
        config = scaled_config(
            offchip_request_bytes_per_cycle=request,
            offchip_response_bytes_per_cycle=response,
        )
        gains = []
        for name in workloads:
            aware = run_config(name, "large", P.LOCALITY_AWARE, config=config)
            balanced = run_config(name, "large", P.LOCALITY_BALANCED,
                                  config=config)
            gains.append(aware.cycles / balanced.cycles)
        gm = geometric_mean(gains)
        rows.append([f"{ratio:.1f}", request, response, gm])
        data[ratio] = gm
    text = format_table(
        ["resp:req ratio", "req B/cyc", "resp B/cyc", "balanced gain (GM)"],
        rows,
        title="Ablation (paper future work): balanced dispatch vs link asymmetry",
    )
    return ExperimentReport("ablation_link_asymmetry", text, data)


def ablation_replacement_policy(policies: Sequence[str] = ("lru", "fifo", "random"),
                                workloads: Sequence[str] = ("PR", "RP", "SC")) -> ExperimentReport:
    """Cache replacement policy sensitivity.

    The paper assumes LRU-managed caches (and an LRU locality monitor).
    Expectation: weaker policies cost some performance on reuse-heavy
    workloads but do not change any qualitative conclusion.
    """
    rows = []
    data = {}
    for policy_name in policies:
        speedups = []
        for name in workloads:
            base = run_config(name, "medium", P.LOCALITY_AWARE)
            swept = run_config(
                name, "medium", P.LOCALITY_AWARE,
                config=scaled_config(cache_replacement_policy=policy_name),
            )
            speedups.append(base.cycles / swept.cycles)
        gm = geometric_mean(speedups)
        rows.append([policy_name, gm])
        data[policy_name] = gm
    text = format_table(
        ["policy", "speedup vs LRU (GM)"],
        rows,
        title="Ablation: cache replacement policy",
    )
    return ExperimentReport("ablation_replacement_policy", text, data)


def ablation_warm_start(workloads: Sequence[str] = ("PR", "SC"),
                        sizes: Sequence[str] = ("small", "large")) -> ExperimentReport:
    """Methodology check: warm-started vs cold caches.

    The paper simulates two billion instructions after the initialization
    phase, so its caches and monitor start warm; this repo emulates that
    state.  Cold starts must matter for small (cache-resident) inputs and
    wash out for large ones.
    """
    from repro.workloads.registry import make_workload

    rows = []
    data = {}
    for size in sizes:
        for name in workloads:
            warm = run_config(name, size, P.LOCALITY_AWARE)
            from repro.system.system import System
            system = System(scaled_config(), P.LOCALITY_AWARE)
            cold = system.run(make_workload(name, size),
                              max_ops_per_thread=warm.metadata["max_ops_per_thread"],
                              warm_start=False)
            ratio = cold.cycles / warm.cycles
            rows.append([f"{name}-{size}", ratio])
            data[f"{name}-{size}"] = ratio
    text = format_table(
        ["workload", "cold-start slowdown"],
        rows,
        title="Ablation: warm-start methodology",
    )
    return ExperimentReport("ablation_warm_start", text, data)
