"""Shared-memory trace transport for the parallel frontier.

``run_batch(jobs > 1)`` used to pickle each :class:`CompiledTrace` into
every worker payload: a sweep of N points over one workload shipped the
same multi-megabyte arrays N times through the ProcessPoolExecutor pipe.
This module publishes each *unique* trace once into a
:class:`multiprocessing.shared_memory` segment; payloads carry a tiny
:class:`TraceHandle` (name + size + fingerprint) and workers attach the
segment read-only, decode it once per process, and memoize the result.

Lifecycle is strictly owner-side: the batch runner creates the segments,
and unlinks them in a ``finally`` when the pool drains — workers never
create or unlink.  Two well-known ``shared_memory`` footguns are handled
explicitly:

* Before Python 3.13, ``SharedMemory(name=...)`` *registers* the segment
  with the ``resource_tracker`` even on plain attach, so the first worker
  to exit would unlink a segment the runner still owns (bpo-39959).
  :func:`attach_trace` attaches untracked — via ``track=False`` where it
  exists, by suppressing the tracker's register call where it does not.
* Segment names are unique per (runner pid, publish counter), so two
  concurrent sweeps on one machine can never collide or cross-attach.

The payload format is self-contained bytes (length-prefixed JSON metadata
followed by the per-thread op arrays), not pickle: a worker from a
different code version fails loudly on the schema tag instead of silently
unpickling stale class layouts.
"""

import itertools
import json
import os
import struct
from array import array
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.trace import TRACE_SCHEMA, CompiledTrace, TraceError

__all__ = ["TraceHandle", "attach_trace", "decode_counters",
           "publish_traces", "unlink_segments"]

#: 8-byte little-endian length prefix in front of the JSON metadata block.
_HEADER = struct.Struct("<Q")

#: Per-process publish counter; with the pid it makes segment names unique.
_counter = itertools.count()

#: Worker-side decode memo: segment name -> decoded trace.  Pool workers
#: execute many payloads that share a trace; each attaches and decodes once.
_DECODED: Dict[str, CompiledTrace] = {}

#: Lifetime attach accounting for this process: full segment decodes vs
#: memo hits.  Trace-affinity scheduling exists to turn decodes into hits
#: (a scattered sweep decodes the same trace in every worker); the bench
#: frontier snapshots the delta per run and surfaces it to the runner.
_DECODE_STATS = {"decodes": 0, "memo_hits": 0}


def decode_counters() -> Dict[str, int]:
    """Lifetime worker-side segment decodes and decode-memo hits."""
    return dict(_DECODE_STATS)


@dataclass(frozen=True)
class TraceHandle:
    """A picklable reference to one published trace segment."""

    name: str
    size: int
    fingerprint: str


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode(trace: CompiledTrace) -> bytes:
    """Serialize a trace: length-prefixed JSON metadata + raw array bytes.

    Per thread the blob holds the kinds byte-array followed by the four
    8-byte operand arrays; the metadata carries every scalar field plus the
    per-thread op counts the decoder needs to slice the blob back apart.
    """
    meta = {
        "schema": TRACE_SCHEMA,
        "workload": trace.workload_name,
        "n_threads": trace.n_threads,
        "max_ops_per_thread": trace.max_ops_per_thread,
        "page_size": trace.page_size,
        "footprint": trace.footprint,
        "regions": [list(r) for r in trace.regions],
        "barrier_groups": trace.barrier_groups,
        "op_mnemonics": trace.op_mnemonics,
        "fingerprint": trace.fingerprint,
        "counts": [len(k) for k in trace.kinds],
    }
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    parts = [_HEADER.pack(len(meta_bytes)), meta_bytes]
    for tid in range(trace.n_threads):
        parts.append(trace.kinds[tid].tobytes())
        for column in (trace.a0, trace.a1, trace.a2, trace.a3):
            parts.append(column[tid].tobytes())
    return b"".join(parts)


def _decode(data: bytes) -> CompiledTrace:
    (meta_len,) = _HEADER.unpack_from(data)
    meta = json.loads(data[_HEADER.size:_HEADER.size + meta_len])
    schema = meta.get("schema")
    if schema != TRACE_SCHEMA:
        raise TraceError(f"unknown trace schema {schema!r} in shared "
                         f"memory segment")
    offset = _HEADER.size + meta_len
    kinds, a0, a1, a2, a3 = [], [], [], [], []
    for n in meta["counts"]:
        k = array("b")
        k.frombytes(data[offset:offset + n])
        offset += n
        kinds.append(k)
        for column in (a0, a1, a2, a3):
            a = array("q")
            a.frombytes(data[offset:offset + 8 * n])
            offset += 8 * n
            column.append(a)
    return CompiledTrace(
        workload_name=meta["workload"],
        n_threads=meta["n_threads"],
        max_ops_per_thread=meta["max_ops_per_thread"],
        page_size=meta["page_size"],
        footprint=meta["footprint"],
        regions=[tuple(r) for r in meta["regions"]],
        barrier_groups=meta["barrier_groups"],
        op_mnemonics=meta["op_mnemonics"],
        kinds=kinds, a0=a0, a1=a1, a2=a2, a3=a3,
        fingerprint=meta["fingerprint"],
    )


# ----------------------------------------------------------------------
# Runner side: publish and unlink
# ----------------------------------------------------------------------


def publish_traces(
    traces: Sequence[Optional[CompiledTrace]],
) -> Tuple[List[Optional[TraceHandle]], List[shared_memory.SharedMemory]]:
    """Publish each unique trace into one segment; return aligned handles.

    ``traces`` may repeat the same trace object across requests (a policy
    sweep over one workload) — identity-deduplication publishes it once.
    The returned segments belong to the caller, who must pass them to
    :func:`unlink_segments` when the batch completes (normally or not).
    """
    handles: List[Optional[TraceHandle]] = []
    segments: List[shared_memory.SharedMemory] = []
    by_id: Dict[int, TraceHandle] = {}
    try:
        for trace in traces:
            if trace is None:
                handles.append(None)
                continue
            handle = by_id.get(id(trace))
            if handle is None:
                data = _encode(trace)
                name = (f"repro-trace-{os.getpid()}-{next(_counter)}-"
                        f"{trace.fingerprint[:8]}")
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=len(data))
                segments.append(segment)
                segment.buf[:len(data)] = data
                handle = TraceHandle(name=segment.name, size=len(data),
                                     fingerprint=trace.fingerprint)
                by_id[id(trace)] = handle
            handles.append(handle)
    except BaseException:
        unlink_segments(segments)
        raise
    return handles, segments


def unlink_segments(segments: Sequence[shared_memory.SharedMemory]) -> None:
    """Close and unlink published segments; tolerates repeats and races."""
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            # Already unlinked (e.g. a retried cleanup after a crash path).
            pass


# ----------------------------------------------------------------------
# Worker side: attach and decode
# ----------------------------------------------------------------------


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    The runner owns the segment's lifetime.  Pre-3.13 ``SharedMemory``
    registers even plain attaches with the resource tracker, whose cleanup
    at worker exit would unlink the runner's segment out from under the
    other workers (bpo-39959); ``track=False`` (3.13+) or a suppressed
    register call keeps the tracker out of the worker entirely.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass  # Python < 3.13: no ``track`` parameter.
    original_register = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":
            original_register(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def attach_trace(handle: TraceHandle) -> CompiledTrace:
    """Attach a published segment and decode its trace (memoized).

    The decode copies out of the shared buffer, so the segment can be
    closed immediately — the worker holds no mapping afterwards and the
    runner's unlink is never blocked on worker lifetimes.
    """
    trace = _DECODED.get(handle.name)
    if trace is not None:
        _DECODE_STATS["memo_hits"] += 1  # simrace: ignore[RCE005] -- per-process counter; workers snapshot-delta it around each attach and ship the delta home in the result envelope (frontier._execute_payload)
        return trace
    _DECODE_STATS["decodes"] += 1  # simrace: ignore[RCE005] -- per-process counter; workers snapshot-delta it around each attach and ship the delta home in the result envelope (frontier._execute_payload)
    try:
        segment = _attach_untracked(handle.name)
    except FileNotFoundError as exc:
        raise TraceError(
            f"shared-memory trace segment {handle.name!r} is gone — the "
            f"batch runner owns segment lifetime and unlinks on exit; a "
            f"worker outliving its batch cannot re-attach") from exc
    try:
        trace = _decode(bytes(segment.buf[:handle.size]))
    finally:
        segment.close()
    if trace.fingerprint != handle.fingerprint:
        raise TraceError(
            f"shared-memory trace segment {handle.name!r} holds trace "
            f"{trace.fingerprint[:12]}..., expected "
            f"{handle.fingerprint[:12]}...")
    _DECODED[handle.name] = trace  # simrace: ignore[RCE005] -- idempotent per-process decode memo keyed by unique segment name; every attacher decodes identical bytes and the parent never reads it
    return trace
