"""Plain-text table and series formatting for benchmark output."""

import math
from typing import Iterable, List, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's 'GM' aggregate in Fig. 6)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(rendered):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    """Render one named figure series as 'x=y' pairs."""
    pairs = ", ".join(f"{x}={y:.3f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
