"""Experiment definitions: one function per table/figure of the paper.

Every function reruns the simulations behind one figure and renders the same
rows/series the paper reports.  Absolute numbers differ (this is a scaled
Python timing model, not the authors' Pin-based testbed); the *shape* — who
wins, by roughly what factor, where crossovers fall — is the reproduction
target (see EXPERIMENTS.md for the side-by-side record).

Each experiment declares its whole frontier of simulation points as
:class:`~repro.bench.frontier.RunRequest` batches and submits them through
:func:`~repro.bench.runner.prefetch` before rendering — so with ``--jobs N``
the independent points fan across worker processes and with the disk cache
enabled a repeat invocation simulates nothing at all; the figure bodies then
read every result out of the memo.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dispatch import DispatchPolicy
from repro.bench.charts import bar_chart
from repro.bench.frontier import RunRequest
from repro.bench.runner import (
    current_settings,
    prefetch,
    run_config,
    run_multiprog,
)
from repro.bench.tables import format_series, format_table, geometric_mean
from repro.system.config import scaled_config
from repro.util.rng import make_rng
from repro.workloads.graph.generators import GRAPH_SUITE
from repro.workloads.registry import WORKLOAD_NAMES

P = DispatchPolicy

#: The nine-graph suite in the paper's x-axis order (ascending size).
SUITE_ORDER = tuple(GRAPH_SUITE)

SIZES = ("small", "medium", "large")


@dataclass
class ExperimentReport:
    """A regenerated experiment: human-readable text plus raw data."""

    name: str
    text: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.name} ==\n{self.text}\n"


# ----------------------------------------------------------------------
# Figure 2: potential of one in-memory atomic add for PageRank
# ----------------------------------------------------------------------

def fig2_pagerank_potential(graphs: Sequence[str] = SUITE_ORDER) -> ExperimentReport:
    """Speedup of always-in-memory FP-add PageRank over the ideal host.

    Paper: up to +53% on large graphs, down to -20% on cache-resident ones
    (p2p-Gnutella31), establishing the locality dependence that motivates
    the whole design.
    """
    prefetch(RunRequest.single("PR", "small", policy, graph_name=graph)
             for graph in graphs for policy in (P.IDEAL_HOST, P.PIM_ONLY))
    speedups = []
    for graph in graphs:
        ideal = run_config("PR", "small", P.IDEAL_HOST, graph_name=graph)
        pim = run_config("PR", "small", P.PIM_ONLY, graph_name=graph)
        speedups.append(pim.speedup_over(ideal))
    text = format_table(
        ["graph", "pim-only speedup"],
        list(zip(graphs, speedups)),
        title="Figure 2: in-memory atomic-add PageRank vs Ideal-Host",
    )
    return ExperimentReport("fig2", text, {"graphs": list(graphs),
                                           "speedup": speedups})


# ----------------------------------------------------------------------
# Figure 6: speedup under three input sizes
# ----------------------------------------------------------------------

FIG6_POLICIES = (P.HOST_ONLY, P.PIM_ONLY, P.LOCALITY_AWARE)


def fig6_speedup(sizes: Sequence[str] = SIZES,
                 workloads: Sequence[str] = WORKLOAD_NAMES) -> ExperimentReport:
    """Speedups of Host-Only / PIM-Only / Locality-Aware vs Ideal-Host.

    Paper: PIM-Only +44% on large but -20% on small; Locality-Aware tracks
    the winner everywhere and beats both on medium graph inputs.
    """
    prefetch(RunRequest.single(name, size, policy)
             for size in sizes for name in workloads
             for policy in (P.IDEAL_HOST,) + FIG6_POLICIES)
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    blocks = []
    for size in sizes:
        rows = []
        per_policy: Dict[str, List[float]] = {p.value: [] for p in FIG6_POLICIES}
        data[size] = {}
        for name in workloads:
            ideal = run_config(name, size, P.IDEAL_HOST)
            row = [name]
            data[size][name] = {}
            for policy in FIG6_POLICIES:
                result = run_config(name, size, policy)
                speedup = result.speedup_over(ideal)
                row.append(speedup)
                per_policy[policy.value].append(speedup)
                data[size][name][policy.value] = speedup
            rows.append(row)
        rows.append(["GM"] + [geometric_mean(per_policy[p.value])
                              for p in FIG6_POLICIES])
        block = format_table(
            ["workload"] + [p.value for p in FIG6_POLICIES],
            rows,
            title=f"Figure 6 ({size} inputs): speedup vs Ideal-Host",
        )
        block += "\n\n" + bar_chart(
            list(workloads),
            {p.value: [data[size][w][p.value] for w in workloads]
             for p in FIG6_POLICIES},
            baseline=1.0,
        )
        blocks.append(block)
    return ExperimentReport("fig6", "\n\n".join(blocks), data)


# ----------------------------------------------------------------------
# Figure 7: off-chip traffic
# ----------------------------------------------------------------------

def fig7_offchip_traffic(sizes: Sequence[str] = SIZES,
                         workloads: Sequence[str] = WORKLOAD_NAMES) -> ExperimentReport:
    """Total off-chip transfer of Host-Only and PIM-Only vs Ideal-Host.

    Paper: PIM-Only slashes traffic on large inputs but inflates it by up
    to 502x (SC) on small ones.
    """
    prefetch(RunRequest.single(name, size, policy)
             for size in sizes for name in workloads
             for policy in (P.IDEAL_HOST, P.HOST_ONLY, P.PIM_ONLY))
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    blocks = []
    for size in sizes:
        rows = []
        data[size] = {}
        for name in workloads:
            ideal_bytes = run_config(name, size, P.IDEAL_HOST).offchip_bytes
            host_bytes = run_config(name, size, P.HOST_ONLY).offchip_bytes
            pim_bytes = run_config(name, size, P.PIM_ONLY).offchip_bytes
            # Warm-started small inputs can leave the host with essentially
            # zero off-chip traffic; the ratio is only meaningful against a
            # non-degenerate baseline.
            if ideal_bytes >= 1024:
                host = host_bytes / ideal_bytes
                pim = pim_bytes / ideal_bytes
                ratio_text = f"{pim:.3f}"
            else:
                host = 1.0
                pim = float("inf")
                ratio_text = "inf (host ~0)"
            rows.append([name, f"{ideal_bytes / 1e6:.2f}",
                         f"{host_bytes / 1e6:.2f}", f"{pim_bytes / 1e6:.2f}",
                         ratio_text])
            data[size][name] = {
                "ideal_bytes": ideal_bytes, "host_bytes": host_bytes,
                "pim_bytes": pim_bytes, "host-only": host, "pim-only": pim,
            }
        blocks.append(format_table(
            ["workload", "ideal MB", "host MB", "pim MB", "pim/ideal"],
            rows,
            title=f"Figure 7 ({size} inputs): off-chip transfer",
        ))
    return ExperimentReport("fig7", "\n\n".join(blocks), data)


# ----------------------------------------------------------------------
# Figure 8: PageRank across the nine-graph suite
# ----------------------------------------------------------------------

def fig8_input_size_sweep(graphs: Sequence[str] = SUITE_ORDER) -> ExperimentReport:
    """PageRank speedup and PIM fraction across all nine graphs.

    Paper: Locality-Aware shifts from 0.3% offload (soc-Slashdot0811) to
    87% (cit-Patents) as graphs grow, tracking the better of Host-Only and
    PIM-Only throughout.
    """
    prefetch(RunRequest.single("PR", "small", policy, graph_name=graph)
             for graph in graphs
             for policy in (P.IDEAL_HOST, P.HOST_ONLY, P.PIM_ONLY,
                            P.LOCALITY_AWARE))
    rows = []
    data = {"graphs": list(graphs), "host-only": [], "pim-only": [],
            "locality-aware": [], "pim_fraction": []}
    for graph in graphs:
        ideal = run_config("PR", "small", P.IDEAL_HOST, graph_name=graph)
        host = run_config("PR", "small", P.HOST_ONLY, graph_name=graph)
        pim = run_config("PR", "small", P.PIM_ONLY, graph_name=graph)
        aware = run_config("PR", "small", P.LOCALITY_AWARE, graph_name=graph)
        rows.append([
            graph,
            host.speedup_over(ideal),
            pim.speedup_over(ideal),
            aware.speedup_over(ideal),
            f"{100 * aware.pim_fraction:.1f}%",
        ])
        data["host-only"].append(host.speedup_over(ideal))
        data["pim-only"].append(pim.speedup_over(ideal))
        data["locality-aware"].append(aware.speedup_over(ideal))
        data["pim_fraction"].append(aware.pim_fraction)
    text = format_table(
        ["graph", "host-only", "pim-only", "locality-aware", "PIM %"],
        rows,
        title="Figure 8: PageRank across graph sizes (speedup vs Ideal-Host)",
    )
    text += "\n\n" + bar_chart(
        list(graphs),
        {"host-only": data["host-only"], "pim-only": data["pim-only"],
         "locality-aware": data["locality-aware"]},
        baseline=1.0,
    )
    return ExperimentReport("fig8", text, data)


# ----------------------------------------------------------------------
# Figure 9: multiprogrammed workloads
# ----------------------------------------------------------------------

def fig9_multiprogrammed(n_mixes: Optional[int] = None, seed: int = 7) -> ExperimentReport:
    """Random two-application mixes: IPC throughput vs Host-Only.

    Paper: 200 mixes; Locality-Aware beats both Host-Only and PIM-Only for
    the overwhelming majority.  The mix count is configurable
    (REPRO_BENCH_MIXES) because each mix costs three full simulations.
    """
    if n_mixes is None:
        # simflow: ignore[FLW003] -- n_mixes only shapes how many requests
        # are generated; every resolved request is fully described without it
        n_mixes = current_settings().n_mixes
    rng = make_rng(seed, "fig9")
    names = list(WORKLOAD_NAMES)
    sizes = list(SIZES)
    ops = max(1000, current_settings().max_ops_per_thread // 2)
    mixes = []
    for mix_idx in range(n_mixes):
        first, second = rng.choice(names, size=2, replace=True)
        size_a, size_b = rng.choice(sizes, size=2, replace=True)
        mixes.append(((str(first), str(size_a), int(mix_idx)),
                      (str(second), str(size_b), int(mix_idx) + 1)))
    fig9_policies = (P.HOST_ONLY, P.PIM_ONLY, P.LOCALITY_AWARE)
    prefetch(RunRequest.multiprog(parts, policy, max_ops_per_thread=ops)
             for parts in mixes for policy in fig9_policies)
    rows = []
    aware_norm, pim_norm = [], []
    for parts in mixes:
        (first, size_a, _), (second, size_b, _) = parts
        host = run_multiprog(parts, P.HOST_ONLY, max_ops_per_thread=ops)
        pim = run_multiprog(parts, P.PIM_ONLY, max_ops_per_thread=ops)
        aware = run_multiprog(parts, P.LOCALITY_AWARE, max_ops_per_thread=ops)
        base = max(host.ipc_sum, 1e-12)
        aware_norm.append(aware.ipc_sum / base)
        pim_norm.append(pim.ipc_sum / base)
        rows.append([f"{first}-{size_a[0]}+{second}-{size_b[0]}",
                     pim_norm[-1], aware_norm[-1]])
    wins = sum(1 for a, p in zip(aware_norm, pim_norm) if a >= max(1.0, p) - 0.02)
    summary = (
        f"Locality-Aware GM {geometric_mean(aware_norm):.3f}, "
        f"PIM-Only GM {geometric_mean(pim_norm):.3f} (vs Host-Only = 1); "
        f"Locality-Aware best-or-tied in {wins}/{n_mixes} mixes"
    )
    text = format_table(
        ["mix", "pim-only", "locality-aware"], rows,
        title=f"Figure 9: {n_mixes} multiprogrammed mixes (IPC sum / Host-Only)",
    ) + "\n" + summary
    return ExperimentReport("fig9", text, {
        "locality_aware": aware_norm, "pim_only": pim_norm, "wins": wins,
    })


# ----------------------------------------------------------------------
# Figure 10: balanced dispatch
# ----------------------------------------------------------------------

FIG10_WORKLOADS = ("SC", "SVM", "PR", "HJ")


def fig10_balanced_dispatch(workloads: Sequence[str] = FIG10_WORKLOADS) -> ExperimentReport:
    """Locality-Aware with and without balanced dispatch on large inputs.

    Paper: up to +25% on the read-dominated SC/SVM by steering PEIs toward
    whichever off-chip direction has spare bandwidth.
    """
    prefetch(RunRequest.single(name, "large", policy)
             for name in workloads
             for policy in (P.IDEAL_HOST, P.LOCALITY_AWARE,
                            P.LOCALITY_BALANCED))
    rows = []
    data = {}
    for name in workloads:
        ideal = run_config(name, "large", P.IDEAL_HOST)
        aware = run_config(name, "large", P.LOCALITY_AWARE)
        balanced = run_config(name, "large", P.LOCALITY_BALANCED)
        gain = aware.cycles / balanced.cycles
        rows.append([name, aware.speedup_over(ideal),
                     balanced.speedup_over(ideal), gain])
        data[name] = {"locality": aware.speedup_over(ideal),
                      "balanced": balanced.speedup_over(ideal),
                      "gain": gain}
    text = format_table(
        ["workload", "locality-aware", "+balanced dispatch", "balanced gain"],
        rows,
        title="Figure 10: balanced dispatch on large inputs (vs Ideal-Host)",
    )
    return ExperimentReport("fig10", text, data)


# ----------------------------------------------------------------------
# Figure 11: PCU design space
# ----------------------------------------------------------------------

FIG11_WORKLOADS = ("PR", "HJ", "HG", "SC")
FIG11_ENTRIES = (1, 2, 4, 8, 16)
FIG11_WIDTHS = (1, 2, 4)


def _locality_cycles(name: str, **config_overrides) -> float:
    config = scaled_config(**config_overrides)
    return run_config(name, "large", P.LOCALITY_AWARE, config=config).cycles


def fig11a_operand_buffer(entries: Sequence[int] = FIG11_ENTRIES,
                          workloads: Sequence[str] = FIG11_WORKLOADS) -> ExperimentReport:
    """Sensitivity to operand-buffer entries per PCU.

    Paper: four entries buy >30% over one; beyond four the memory-level
    parallelism across PEIs is saturated.  (Bench subset: a representative
    workload per domain — large inputs, where the buffer binds.)
    """
    prefetch(
        [RunRequest.single(name, "large", P.LOCALITY_AWARE)
         for name in workloads]
        + [RunRequest.single(name, "large", P.LOCALITY_AWARE,
                             config=scaled_config(pcu_operand_buffer_entries=n))
           for n in entries for name in workloads])
    per_entry = {}
    for n in entries:
        speedups = []
        for name in workloads:
            base = _locality_cycles(name)  # default: 4 entries
            swept = _locality_cycles(name, pcu_operand_buffer_entries=n)
            speedups.append(base / swept)
        per_entry[n] = geometric_mean(speedups)
    # Normalize to the default 4-entry configuration, as in the paper.
    norm = per_entry.get(4, 1.0)
    series = [per_entry[n] / norm for n in entries]
    text = format_series("Figure 11a: performance vs operand-buffer entries "
                         "(normalized to 4)", list(entries), series)
    return ExperimentReport("fig11a", text,
                            {"entries": list(entries), "speedup": series})


def fig11b_issue_width(widths: Sequence[int] = FIG11_WIDTHS,
                       workloads: Sequence[str] = FIG11_WORKLOADS) -> ExperimentReport:
    """Sensitivity to PCU issue width.

    Paper: negligible — PEI time is dominated by memory access latency.
    """
    prefetch(
        [RunRequest.single(name, "large", P.LOCALITY_AWARE)
         for name in workloads]
        + [RunRequest.single(name, "large", P.LOCALITY_AWARE,
                             config=scaled_config(pcu_issue_width=w))
           for w in widths for name in workloads])
    per_width = {}
    for w in widths:
        speedups = []
        for name in workloads:
            base = _locality_cycles(name)  # default: width 1
            swept = _locality_cycles(name, pcu_issue_width=w)
            speedups.append(base / swept)
        per_width[w] = geometric_mean(speedups)
    series = [per_width[w] for w in widths]
    text = format_series("Figure 11b: performance vs PCU issue width "
                         "(normalized to 1)", list(widths), series)
    return ExperimentReport("fig11b", text,
                            {"widths": list(widths), "speedup": series})


# ----------------------------------------------------------------------
# Section 7.6: PMU overhead ablation
# ----------------------------------------------------------------------

SEC76_WORKLOADS = ("ATF", "PR", "HJ", "HG")


def sec76_pmu_overhead(workloads: Sequence[str] = SEC76_WORKLOADS) -> ExperimentReport:
    """Idealized PIM directory / locality monitor vs the real PMU.

    Paper: idealizing buys only 0.13% (directory) and 0.31% (monitor) —
    the cost-effective structures are nearly free.
    """
    prefetch(RunRequest.single(name, "large", P.LOCALITY_AWARE, config=cfg)
             for name in workloads
             for cfg in (None, scaled_config(ideal_pim_directory=True),
                         scaled_config(ideal_locality_monitor=True)))
    rows = []
    dir_gains, mon_gains = [], []
    for name in workloads:
        real = run_config(name, "large", P.LOCALITY_AWARE)
        ideal_dir = run_config(name, "large", P.LOCALITY_AWARE,
                               config=scaled_config(ideal_pim_directory=True))
        ideal_mon = run_config(name, "large", P.LOCALITY_AWARE,
                               config=scaled_config(ideal_locality_monitor=True))
        dir_gain = real.cycles / ideal_dir.cycles - 1.0
        mon_gain = real.cycles / ideal_mon.cycles - 1.0
        dir_gains.append(dir_gain)
        mon_gains.append(mon_gain)
        rows.append([name, f"{100 * dir_gain:+.2f}%", f"{100 * mon_gain:+.2f}%"])
    avg_dir = sum(dir_gains) / len(dir_gains)
    avg_mon = sum(mon_gains) / len(mon_gains)
    rows.append(["avg", f"{100 * avg_dir:+.2f}%", f"{100 * avg_mon:+.2f}%"])
    text = format_table(
        ["workload", "ideal directory gain", "ideal monitor gain"],
        rows,
        title="Section 7.6: speedup from idealizing PMU structures",
    )
    return ExperimentReport("sec76", text, {
        "directory_gain": avg_dir, "monitor_gain": avg_mon,
    })


# ----------------------------------------------------------------------
# Figure 12: energy
# ----------------------------------------------------------------------

def fig12_energy(sizes: Sequence[str] = SIZES,
                 workloads: Sequence[str] = WORKLOAD_NAMES) -> ExperimentReport:
    """Memory-hierarchy energy of the three configurations vs Ideal-Host.

    Paper: Locality-Aware consumes the least energy at every input size;
    PIM-Only inflates DRAM + link energy on small inputs; memory-side PCUs
    are ~1.4% of HMC energy.
    """
    prefetch(RunRequest.single(name, size, policy)
             for size in sizes for name in workloads
             for policy in (P.IDEAL_HOST, P.HOST_ONLY, P.PIM_ONLY,
                            P.LOCALITY_AWARE))
    blocks = []
    data: Dict[str, Dict] = {}
    mem_pcu_fracs = []
    for size in sizes:
        rows = []
        data[size] = {}
        for policy in (P.HOST_ONLY, P.PIM_ONLY, P.LOCALITY_AWARE):
            totals, dram, offchip = [], [], []
            for name in workloads:
                ideal = run_config(name, size, P.IDEAL_HOST)
                res = run_config(name, size, policy)
                base = max(ideal.energy.total_pj, 1.0)
                totals.append(res.energy.total_pj / base)
                dram.append(res.energy.dram_pj / base)
                offchip.append(res.energy.offchip_pj / base)
                if policy is P.LOCALITY_AWARE and res.energy.hmc_pj > 0:
                    mem_pcu_fracs.append(res.energy.mem_pcu_fraction_of_hmc)
            rows.append([policy.value, geometric_mean(totals),
                         geometric_mean(dram), geometric_mean(offchip)])
            data[size][policy.value] = {
                "total": geometric_mean(totals),
                "dram": geometric_mean(dram),
                "offchip": geometric_mean(offchip),
            }
        blocks.append(format_table(
            ["config", "total", "dram part", "offchip part"],
            rows,
            title=f"Figure 12 ({size} inputs): energy normalized to Ideal-Host (GM)",
        ))
    frac = sum(mem_pcu_fracs) / len(mem_pcu_fracs) if mem_pcu_fracs else 0.0
    tail = (f"memory-side PCUs account for {100 * frac:.2f}% of HMC energy "
            f"(paper: 1.4%)")
    return ExperimentReport("fig12", "\n\n".join(blocks) + "\n" + tail,
                            {**data, "mem_pcu_fraction": frac})


# ----------------------------------------------------------------------
# Smoke suite: a reduced matrix exercising the full runner path quickly
# ----------------------------------------------------------------------

SMOKE_WORKLOADS = ("HG", "PR")
SMOKE_POLICIES = (P.HOST_ONLY, P.LOCALITY_AWARE)
SMOKE_MAX_OPS = 600


def smoke_suite(workloads: Sequence[str] = SMOKE_WORKLOADS) -> ExperimentReport:
    """Two small workloads under three policies (runner/CI smoke check).

    Not a paper figure: a seconds-scale matrix that drives the whole
    plan/execute pipeline — prefetch, parallel fan-out, the disk cache,
    trajectory accounting — which `make bench-smoke` runs twice to assert
    that the warm invocation performs zero simulations.
    """
    ops = min(current_settings().max_ops_per_thread, SMOKE_MAX_OPS)
    policies = (P.IDEAL_HOST,) + SMOKE_POLICIES
    prefetch(RunRequest.single(name, "small", policy, max_ops_per_thread=ops)
             for name in workloads for policy in policies)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        ideal = run_config(name, "small", P.IDEAL_HOST,
                           max_ops_per_thread=ops)
        row = [name]
        data[name] = {}
        for policy in SMOKE_POLICIES:
            result = run_config(name, "small", policy,
                                max_ops_per_thread=ops)
            speedup = result.speedup_over(ideal)
            row.append(speedup)
            data[name][policy.value] = speedup
        rows.append(row)
    text = format_table(
        ["workload"] + [p.value for p in SMOKE_POLICIES], rows,
        title=f"Smoke suite (small inputs, {ops} ops/thread): "
              f"speedup vs Ideal-Host",
    )
    return ExperimentReport("smoke", text, data)
