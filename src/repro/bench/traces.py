"""Capture-once trace store: the workload side of the benchmark cache.

The paper's figures sweep the *machine* — every figure runs the same
workload input under 4+ dispatch policies or config points — but a
workload's operation stream never depends on the execution mode (the
engine guarantee the op-cap methodology rests on).  So the functional
algorithm only needs to run once per (workload, input, seed): this module
captures it into a :class:`~repro.cpu.trace.CompiledTrace` and serves the
replayable trace to every config of the sweep.

Two layers, mirroring :class:`~repro.bench.cache.BenchCache`:

* an **in-process memo** keyed by the capture fingerprint — always on in
  the runner, so one ``python -m repro.bench run fig6`` invocation captures
  each workload once even with the result cache disabled; and
* an optional **disk cache** under ``<root>/v-<salt>/``, sharing the result
  cache's code-version salt and atomic-write machinery, so repeated suite
  invocations skip the functional runs entirely.

The trace key (:func:`trace_request_key`) deliberately excludes the
dispatch policy and every config field except the two that shape the
operation stream itself: the thread count (``n_cores``) and the
``page_size`` the regions are laid out with.  Anything else — cache sizes,
PCU parameters, link widths — only affects *timing*, which replay
recomputes.
"""

import json
from pathlib import Path
from typing import Dict, Optional

from repro.bench.cache import atomic_write_json, code_version_salt
from repro.cpu.trace import CompiledTrace, TraceError, capture_trace, trace_fingerprint
from repro.obs.events import NULL_LEDGER

__all__ = ["TraceStore", "trace_request_key"]


def trace_request_key(request) -> Dict:
    """The capture-identifying subset of a resolved RunRequest.

    Two requests with equal keys replay the identical operation stream,
    whatever their policy or machine config — this is what lets one capture
    serve a whole figure's worth of simulation points.
    """
    if not request.resolved:
        raise ValueError("trace keys require a resolved request")
    return {
        "workloads": [spec.describe() for spec in request.workloads],
        "n_threads": request.config.n_cores,
        "page_size": request.config.page_size,
        "max_ops_per_thread": request.max_ops_per_thread,
    }


class TraceStore:
    """Request -> CompiledTrace store: in-process memo + optional disk."""

    def __init__(self, root=None, salt: Optional[str] = None):
        self.root = Path(root) if root is not None else None
        self.salt = salt if salt is not None else code_version_salt()
        # Fingerprint -> trace; None marks a workload whose stream cannot
        # be compiled (so the failed capture is not retried per config).
        self._memo: Dict[str, Optional[CompiledTrace]] = {}
        self.captures = 0
        self.memo_hits = 0
        self.disk_hits = 0
        self.failures = 0
        #: Run-ledger sink (swapped in by the runner): every capture, hit,
        #: and uncompilable workload emits its lifecycle event.
        self.ledger = NULL_LEDGER

    # ------------------------------------------------------------------

    def key(self, request) -> str:
        """The capture fingerprint of a resolved request, salt-mixed."""
        return trace_fingerprint({"salt": self.salt,
                                  "key": trace_request_key(request)})

    def path_for(self, key: str) -> Path:
        if self.root is None:
            raise ValueError("trace store has no disk root")
        return self.root / f"v-{self.salt}" / key[:2] / f"{key}.trace.json"

    # ------------------------------------------------------------------

    def get_or_capture(self, request) -> Optional[CompiledTrace]:
        """The trace for ``request`` — memo, then disk, then capture.

        Returns None (memoized) when the workload's stream cannot be
        compiled; the caller falls back to generator execution.
        """
        key = self.key(request)
        if key in self._memo:
            self.memo_hits += 1
            if self.ledger.enabled and self._memo[key] is not None:
                self.ledger.emit("trace_hit", source="memo",
                                 fingerprint=request.event_fingerprint())
            return self._memo[key]
        if self.root is not None:
            trace = self._load(self.path_for(key))
            if trace is not None:
                self.disk_hits += 1
                self._memo[key] = trace
                if self.ledger.enabled:
                    self.ledger.emit("trace_hit", source="disk",
                                     fingerprint=request.event_fingerprint())
                return trace
        # Deferred import: frontier imports nothing from here, and the
        # build helper lives next to the request type it interprets.
        from repro.bench.frontier import build_workload

        try:
            trace = capture_trace(
                build_workload(request),
                n_threads=request.config.n_cores,
                max_ops_per_thread=request.max_ops_per_thread,
                page_size=request.config.page_size,
                key=trace_request_key(request),
            )
        except TraceError:
            self.failures += 1
            self._memo[key] = None
            if self.ledger.enabled:
                self.ledger.emit("trace_uncompilable",
                                 fingerprint=request.event_fingerprint())
            return None
        self.captures += 1
        self._memo[key] = trace
        if self.root is not None:
            atomic_write_json(self.path_for(key), trace.to_payload())
        if self.ledger.enabled:
            self.ledger.emit("trace_capture",
                             fingerprint=request.event_fingerprint())
        return trace

    @staticmethod
    def _load(path: Path) -> Optional[CompiledTrace]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return CompiledTrace.from_payload(payload)
        except (OSError, json.JSONDecodeError, TraceError, KeyError):
            # Absent, torn, or from an incompatible schema: re-capture.
            return None

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-process memo (the disk generation stays)."""
        self._memo.clear()

    def counters(self) -> Dict[str, int]:
        return {"captures": self.captures, "memo_hits": self.memo_hits,
                "disk_hits": self.disk_hits, "failures": self.failures}
